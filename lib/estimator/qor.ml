(* Quality-of-results estimator (the role ScaleHLS's QoR estimator and the
   Vitis HLS synthesis reports play in the paper).  It predicts, for an
   optimized design in structural dataflow form:

   - per-node latency and initiation interval, from loop trip counts,
     unroll directives, memory-port constraints and bank-conflict analysis
     of each affine access against the buffer partition attributes;
   - resource usage (DSP / LUT / FF / BRAM18), including the
     address-calculation DSP overhead of small external tiles and the
     control-logic blow-up of misaligned unroll/partition factors;
   - whole-design interval and throughput: ping-pong dataflow interval is
     the maximum node latency, inflated by fork-join imbalance when the
     data-path balancing pass has not provided enough buffer stages;
     non-dataflow designs serialize nodes.

   All first-order effects that drive the paper's comparisons are modeled;
   absolute cycle counts are not calibrated against silicon. *)

open Hida_ir
open Ir
open Hida_dialects

(* ---- Cost tables ---- *)

(* DSP blocks consumed by one instance of a MAC-class operation.  The
   datapath precision is the element type of the buffers the node
   touches: fixed-point multipliers fit one DSP, f32 needs three. *)
let dsp_per_op ~elem name =
  match (name, Arith.classify name) with
  | ("math.sqrt" | "math.exp"), _ -> 6
  | _, Arith.Mac -> (
      match elem with
      | I1 | I8 | I16 -> 1
      | I32 | I64 | Index | F32 -> 3
      | F64 -> 8
      | _ -> 3)
  | _ -> 0

let lut_per_op ~elem name =
  match Arith.classify name with
  | Arith.Mac -> (
      match elem with F32 -> 90 | F64 -> 300 | I8 | I16 -> 12 | _ -> 40)
  | Arith.Alu -> (
      match elem with F32 -> 120 | F64 -> 400 | I8 -> 6 | I16 -> 8 | _ -> 32)
  | Arith.Memory -> 10
  | Arith.Control | Arith.Other -> 0

let ff_per_op ~elem name = lut_per_op ~elem name

(* One MAC unit (for normalized DSP-efficiency reporting). *)
let dsp_per_mac ~elem = max 1 (dsp_per_op ~elem "arith.mulf")

(* Pipeline fill depth of a node's datapath. *)
let base_depth = 10

(* ---- Access analysis ---- *)

type access = {
  a_buffer : value; (* the accessed buffer / port / memref value, outer *)
  a_store : bool;
  (* For each buffer dimension: (enclosing loop, coefficient) pairs for
     every loop induction variable appearing in that index expression. *)
  a_dims : (op * int) list array;
  (* Constant offset of each dimension's index expression (used by the
     loop-carried dependence analysis: A[i] vs A[i-1]). *)
  a_consts : int array;
}

let loop_of_iv (v : value) =
  match v.v_def with
  | Def_block_arg (blk, 0) -> (
      match Block.parent blk with
      | Some g -> (
          match Region.parent g with
          | Some op when Affine_d.is_for op -> Some op
          | _ -> None)
      | None -> None)
  | _ -> None

(* Resolve an index operand to its affine form over loop induction
   variables, seeing through arith.addi / arith.subi / arith.muli with
   constant operands (front-ends compute shifted indices this way).
   Returns (per-loop coefficients, constant). *)
let rec index_affine (v : value) : (op * int) list * int =
  match loop_of_iv v with
  | Some l -> ([ (l, 1) ], 0)
  | None -> (
      match Value.defining_op v with
      | Some def when Arith.is_constant def -> (
          match Arith.constant_int_value def with
          | Some c -> ([], c)
          | None -> ([], 0))
      | Some def
        when Op.name def = "arith.addi" || Op.name def = "arith.subi" ->
          let sign = if Op.name def = "arith.subi" then -1 else 1 in
          let p0, c0 = index_affine (Op.operand def 0) in
          let p1, c1 = index_affine (Op.operand def 1) in
          (p0 @ List.map (fun (l, c) -> (l, sign * c)) p1, c0 + (sign * c1))
      | Some def when Op.name def = "arith.muli" -> (
          let p0, c0 = index_affine (Op.operand def 0) in
          let p1, c1 = index_affine (Op.operand def 1) in
          match (p0, p1) with
          | [], _ -> (List.map (fun (l, c) -> (l, c * c0)) p1, c0 * c1)
          | _, [] -> (List.map (fun (l, c) -> (l, c * c1)) p0, c0 * c1)
          | _ -> ([], 0))
      | _ -> ([], 0))

(* Resolve accesses of all loads/stores inside [root], mapping node block
   arguments back to outer values via [bindings]. *)
let collect_accesses ?(bindings = []) root =
  (* Chase block-arg bindings transitively: a node argument resolves to a
     schedule argument, which in turn resolves to the outer buffer. *)
  let table = List.map (fun (a, b) -> (b.v_id, a)) bindings in
  let rec resolve v =
    match List.assoc_opt v.v_id table with
    | Some outer when not (Value.equal outer v) -> resolve outer
    | _ -> v
  in
  let accesses = ref [] in
  Walk.preorder root ~f:(fun op ->
      match Affine_d.accessed_memref op with
      | None -> ()
      | Some memref ->
          let indices =
            if Affine_d.is_load op then Affine_d.load_indices op
            else Affine_d.store_indices op
          in
          let map = Affine_d.access_map op in
          let num_dims = List.length indices in
          let index_forms = List.map index_affine indices in
          let analyzed =
            List.map
              (fun expr ->
                match Affine.linear_coeffs ~num_dims expr with
                | coeffs, map_const ->
                    let pairs = ref [] and const = ref map_const in
                    List.iteri
                      (fun i (iv_pairs, iv_const) ->
                        if coeffs.(i) <> 0 then begin
                          const := !const + (coeffs.(i) * iv_const);
                          List.iter
                            (fun (l, c) -> pairs := (l, coeffs.(i) * c) :: !pairs)
                            iv_pairs
                        end)
                      index_forms;
                    (List.rev !pairs, !const)
                | exception Invalid_argument _ -> ([], 0))
              map.Affine.exprs
          in
          accesses :=
            {
              a_buffer = resolve memref;
              a_store = Affine_d.is_store op;
              a_dims = Array.of_list (List.map fst analyzed);
              a_consts = Array.of_list (List.map snd analyzed);
            }
            :: !accesses);
  List.rev !accesses

(* Unrolled copies of an access along one buffer dimension: the product of
   unroll factors of the loops driving that dimension. *)
let dim_unroll (dim : (op * int) list) =
  List.fold_left (fun acc (l, _c) -> acc * Affine_d.unroll_factor l) 1 dim

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Number of distinct cyclic banks hit by [u] parallel accesses with
   address stride [c] under a cyclic partition of factor [p]. *)
let distinct_banks ~u ~c ~p =
  if p <= 1 then 1
  else
    let period = p / gcd (abs c) p in
    min u (max 1 period)

(* Bank-conflict multiplier for one access against the partition attrs of
   the buffer it touches.  1 = fully parallel, >1 = serialized accesses
   (the paper's "mismatch between node unroll factors and memory layouts"
   falling back to flawed control logic). *)
let access_conflict ~kinds ~factors access =
  let rank = Array.length access.a_dims in
  let kinds = Array.of_list kinds and factors = Array.of_list factors in
  let mult = ref 1 in
  for d = 0 to rank - 1 do
    let u = dim_unroll access.a_dims.(d) in
    if u > 1 then begin
      let p = if d < Array.length factors then factors.(d) else 1 in
      let kind = if d < Array.length kinds then kinds.(d) else Hida_d.P_none in
      let c =
        match access.a_dims.(d) with (_, c0) :: _ -> c0 | [] -> 1
      in
      let served =
        match kind with
        | Hida_d.P_none -> 1
        | Hida_d.P_cyclic -> distinct_banks ~u ~c ~p
        | Hida_d.P_block ->
            (* Unrolled consecutive accesses mostly land in one block. *)
            min u (max 1 (u * abs c / max 1 p))
      in
      mult := !mult * max 1 ((u + served - 1) / served)
    end
  done;
  !mult

(* ---- Loop / body statistics ---- *)

type body_stats = {
  macs : int;       (* MAC-class ops per innermost iteration *)
  alus : int;
  mem_ops : int;
  dsps_per_iter : int;
  luts_per_iter : int;
  ffs_per_iter : int;
}

let body_statistics ~elem root =
  let macs = ref 0 and alus = ref 0 and mems = ref 0 in
  let dsps = ref 0 and luts = ref 0 and ffs = ref 0 in
  Walk.preorder root ~f:(fun op ->
      let name = Op.name op in
      (match Arith.classify name with
      | Arith.Mac -> incr macs
      | Arith.Alu -> incr alus
      | Arith.Memory -> incr mems
      | Arith.Control | Arith.Other -> ());
      dsps := !dsps + dsp_per_op ~elem name;
      luts := !luts + lut_per_op ~elem name;
      ffs := !ffs + ff_per_op ~elem name);
  {
    macs = !macs;
    alus = !alus;
    mem_ops = !mems;
    dsps_per_iter = !dsps;
    luts_per_iter = !luts;
    ffs_per_iter = !ffs;
  }

(* All loops inside [root] (in nesting order irrelevant). *)
let loops_in root = Walk.collect root ~pred:Affine_d.is_for

let total_trip root =
  (* Product over loops of trip counts along every nest; computed as the
     sum over innermost loops of the product of their enclosing trips. *)
  let inner = Affine_d.innermost_loops root in
  List.fold_left
    (fun acc l ->
      let nest = l :: Affine_d.enclosing_loops l in
      acc + List.fold_left (fun p x -> p * Affine_d.trip_count x) 1 nest)
    0 inner

let unroll_product root =
  List.fold_left (fun acc l -> acc * Affine_d.unroll_factor l) 1 (loops_in root)

(* ---- Buffer costing ---- *)

(* BRAM18 blocks for a buffer: each bank is a separate physical memory, so
   over-partitioning wastes BRAM (minimum one 18Kb block per bank). *)
let buffer_brams op =
  match Value.typ (Op.result op 0) with
  | Memref { shape; elem } ->
      (* A "resident_rows" attribute marks a streamed intermediate whose
         tiled implementation only keeps a line-buffer window on chip:
         that many rows (second dimension) of a small channel tile (first
         dimension). *)
      let shape =
        match (Op.int_attr op "resident_rows", shape) with
        | Some r, d0 :: d1 :: rest -> min d0 8 :: min r d1 :: rest
        | _ -> shape
      in
      let elems = List.fold_left ( * ) 1 shape in
      let banks = Hida_d.bank_count op in
      let depth = Hida_d.buffer_depth op in
      let bits = elems * depth * Typ.bit_width elem in
      let bits_per_bank = (bits + banks - 1) / banks in
      (* Banks of 1Kb or less map to distributed LUTRAM, not BRAM. *)
      if bits_per_bank <= 1024 then 0
      else banks * max 1 ((bits_per_bank + 18_431) / 18_432)
  | _ -> 0

(* LUTs spent on LUTRAM banks (64 bits per SLICEM LUT). *)
let buffer_lutram op =
  match Value.typ (Op.result op 0) with
  | Memref { shape; elem } ->
      let shape =
        match (Op.int_attr op "resident_rows", shape) with
        | Some r, d0 :: d1 :: rest -> min d0 8 :: min r d1 :: rest
        | _ -> shape
      in
      let elems = List.fold_left ( * ) 1 shape in
      let banks = Hida_d.bank_count op in
      let depth = Hida_d.buffer_depth op in
      let bits = elems * depth * Typ.bit_width elem in
      let bits_per_bank = (bits + banks - 1) / banks in
      if bits_per_bank <= 1024 then (bits + 63) / 64 else 0
  | _ -> 0

let buffer_resource op =
  (* Streamized buffers were replaced by FIFO channels; the dead operand
     keeps the structural edge but costs no memory. *)
  if Op.bool_attr op "streamized" then Resource.zero
  else if Hida_d.buffer_placement op = Hida_d.External then Resource.zero
  else
    Resource.make ~bram18:(buffer_brams op)
      ~luts:((8 * Hida_d.bank_count op) + buffer_lutram op)
      ~ffs:(8 * Hida_d.bank_count op)
      ()

(* ---- Node estimation ---- *)

type node_est = {
  n_latency : int;          (* cycles to process one dataflow frame *)
  n_interval : int;         (* cycles between successive frames *)
  n_resource : Resource.t;
  n_macs_per_frame : int;   (* work content, for efficiency accounting *)
}

(* Partition attributes of the buffer feeding an access, if the outer
   value is produced by a hida.buffer. *)
let partition_of_value v =
  match Value.defining_op v with
  | Some op when Hida_d.is_buffer op ->
      (Hida_d.partition_kinds op, Hida_d.partition_factors op)
  | Some op when Hida_d.is_port op ->
      (* External ports are wide words: treat as one bank per port. *)
      ([], [])
  | _ -> ([], [])

let is_external_value v =
  match Value.defining_op v with
  | Some op when Hida_d.is_port op -> true
  | Some op when Hida_d.is_buffer op -> Hida_d.buffer_placement op = External
  | Some _ -> false
  | None -> (
      (* Block arguments of the top-level function are kernel parameters
         living in external (AXI) memory. *)
      match v.v_def with
      | Def_block_arg (blk, _) -> (
          match Block.parent blk with
          | Some g -> (
              match Region.parent g with
              | Some op -> Op.name op = "func.func"
              | None -> false)
          | None -> false)
      | _ -> false)

(* Elements moved over AXI per frame by [access]: the product of trip
   counts of the loops driving it, capped at the buffer size — tiling
   reuse means each element crosses the AXI boundary once per frame. *)
let access_footprint access =
  let raw =
    Array.fold_left
      (fun acc dim ->
        acc * List.fold_left (fun p (l, _) -> p * Affine_d.trip_count l) 1 dim)
      1 access.a_dims
  in
  let cap =
    match Value.typ access.a_buffer with
    | Memref { shape; _ } | Tensor { shape; _ } ->
        List.fold_left ( * ) 1 shape
    | _ -> raw
  in
  min raw cap

let elem_of_value v =
  match Value.typ v with
  | Memref { elem; _ } | Tensor { elem; _ } | Stream { elem; _ } -> elem
  | t -> t

(* Estimate one structural node (or, for baselines, any loop-nest region).
   [bindings] maps inner block args to outer buffer values. *)
let estimate_node (dev : Device.t) ?(bindings = []) root =
  let elem =
    (* Dominant element type: first accessed buffer's element type. *)
    let accesses = collect_accesses ~bindings root in
    match accesses with
    | a :: _ -> elem_of_value a.a_buffer
    | [] -> F32
  in
  (* Nodes may contain several sequential loop nests (fused tasks); each
     nest has its own unroll factors, datapath replication and pipeline,
     so compute time and resources accumulate per nest. *)
  let nests = Affine_d.outermost_loops root in
  let per_nest =
    List.map
      (fun nest ->
        let stats = body_statistics ~elem nest in
        let trips = max 1 (total_trip nest) in
        let unroll = max 1 (unroll_product nest) in
        let nest_accesses = collect_accesses ~bindings nest in
        let directive_ii =
          List.fold_left
            (fun acc l -> if Affine_d.is_pipelined l then max acc (Affine_d.ii l) else acc)
            1
            (Walk.collect nest ~pred:Affine_d.is_for)
        in
        let nest_ii =
          List.fold_left
            (fun ii access ->
              if is_external_value access.a_buffer then ii
              else
                let kinds, factors = partition_of_value access.a_buffer in
                max ii (access_conflict ~kinds ~factors access))
            directive_ii nest_accesses
        in
        (stats, trips, unroll, nest_ii))
      nests
  in
  let accesses = collect_accesses ~bindings root in
  (* Initiation interval: memory ports + bank conflicts.  External
     accesses stream through on-chip tile buffers and are charged as
     transfer time below, not as bank conflicts. *)
  let onchip_accesses =
    List.filter (fun a -> not (is_external_value a.a_buffer)) accesses
  in
  (* External transfer time per frame (overlapped with compute via
     double-buffering: take the max below). *)
  let transfer_cycles =
    let bits_moved =
      List.fold_left
        (fun acc access ->
          if is_external_value access.a_buffer then
            acc
            + access_footprint access * Typ.bit_width (elem_of_value access.a_buffer)
          else acc)
        0 accesses
    in
    if bits_moved = 0 then 0
    else begin
      (* Burst efficiency: short bursts pay the AXI latency repeatedly.
         The burst length is the innermost contiguous run: the node's
         external-tile size when set by the driver, otherwise the
         innermost loop trip count. *)
      let innermost_trip =
        match Op.int_attr root "tile_size" with
        | Some t -> t
        | None -> (
            match Affine_d.innermost_loops root with
            | l :: _ -> Affine_d.trip_count l
            | [] -> 1)
      in
      let words = (bits_moved + dev.axi_width_bits - 1) / dev.axi_width_bits in
      let burst = max 1 innermost_trip in
      let bursts = (words + burst - 1) / burst in
      (words / dev.axi_ports) + (bursts * dev.axi_latency / dev.axi_ports)
    end
  in
  let depth =
    base_depth
    + (if List.exists (fun a -> is_external_value a.a_buffer) accesses then
         dev.axi_latency
       else 0)
  in
  let compute =
    List.fold_left
      (fun acc (_, trips, unroll, ii) -> acc + ((trips + unroll - 1) / unroll * ii))
      depth per_nest
  in
  let latency = max compute transfer_cycles in
  (* Resources: the datapath is replicated [unroll] times. *)
  let conflict_total =
    List.fold_left
      (fun acc a ->
        let kinds, factors = partition_of_value a.a_buffer in
        acc + access_conflict ~kinds ~factors a)
      0 onchip_accesses
  in
  (* Address-calculation overhead: external accesses with tiny tiles spend
     DSPs on addressing (Fig. 10 observation). *)
  let addr_dsps =
    List.fold_left
      (fun acc a ->
        if is_external_value a.a_buffer then
          let burst =
            match Op.int_attr root "tile_size" with
            | Some t -> t
            | None -> (
                match Affine_d.innermost_loops root with
                | l :: _ -> Affine_d.trip_count l
                | [] -> 1)
          in
          (* Fine-grained control of tiny tiles spends DSPs on address
             calculation (Fig. 10's observation at tile size 2). *)
          if burst < 4 then acc + 6 else acc + 1
        else acc)
      0 accesses
  in
  let max_unroll =
    List.fold_left (fun acc (_, _, unroll, _) -> max acc unroll) 1 per_nest
  in
  let mux_luts = 12 * conflict_total * max_unroll in
  let resource =
    Resource.make
      ~dsps:
        (List.fold_left
           (fun acc (stats, _, unroll, _) -> acc + (stats.dsps_per_iter * unroll))
           addr_dsps per_nest)
      ~luts:
        (List.fold_left
           (fun acc (stats, _, unroll, _) -> acc + (stats.luts_per_iter * unroll))
           (mux_luts + 250) per_nest)
      ~ffs:
        (List.fold_left
           (fun acc (stats, _, unroll, _) -> acc + (stats.ffs_per_iter * unroll))
           (mux_luts + 250) per_nest)
      ()
  in
  {
    n_latency = latency;
    n_interval = latency;
    n_resource = resource;
    n_macs_per_frame =
      List.fold_left
        (fun acc (stats, trips, _, _) -> acc + (stats.macs * trips))
        0 per_nest;
  }

(* ---- Design estimation ---- *)

type design_est = {
  d_latency : int;      (* end-to-end cycles for one sample *)
  d_interval : int;     (* cycles between samples in steady state *)
  d_resource : Resource.t;
  d_macs : int;         (* MACs per sample *)
  d_throughput : float; (* samples/s *)
  d_dsp_efficiency : float;
}

(* Node dependence graph of a schedule: node u precedes node v when u
   writes a buffer v reads. *)
let schedule_edges sched =
  let nodes = List.filter Hida_d.is_node (Block.ops (Hida_d.node_block sched)) in
  let writes = Hashtbl.create 16 in
  List.iter
    (fun n ->
      List.iteri
        (fun i v ->
          if Hida_d.operand_effect n i = `Read_write then
            Hashtbl.replace writes v.v_id n)
        (Op.operands n))
    nodes;
  let blk = Hida_d.node_block sched in
  let index n = Option.value (Block.index_of blk n) ~default:0 in
  let edges = ref [] in
  List.iter
    (fun n ->
      List.iteri
        (fun i v ->
          if Hida_d.operand_effect n i = `Read_only then
            match Hashtbl.find_opt writes v.v_id with
            | Some producer
            (* A writer that comes later in program order is a cross-frame
               feedback (in-place updates): the reader consumes the
               previous frame's value, so there is no same-frame edge. *)
              when (not (Op.equal producer n)) && index producer < index n ->
                edges := (producer, n, v) :: !edges
            | _ -> ())
        (Op.operands n))
    nodes;
  (nodes, !edges)

(* Longest-path stage level per node (sources at level 0). *)
let stage_levels nodes edges =
  let level = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace level n.o_id 0) nodes;
  (* Relax |nodes| times (graphs are small DAGs). *)
  for _ = 1 to List.length nodes do
    List.iter
      (fun (u, v, _) ->
        let lu = Hashtbl.find level u.o_id and lv = Hashtbl.find level v.o_id in
        if lv < lu + 1 then Hashtbl.replace level v.o_id (lu + 1))
      edges
  done;
  level

(* Node-estimate memoization hook.  [Qor_cache] installs a closure here
   (a hook rather than a direct call to avoid a dependency cycle: the
   cache layer keys entries on structural signatures computed with this
   module's access analysis).  The hook receives the device, the
   binding environment, the node and a thunk computing the fresh
   estimate, and may serve the result from a content-addressed cache.
   The default is the identity: estimation is uncached. *)
let node_memo_hook :
    (Device.t ->
    bindings:(value * value) list ->
    op ->
    (unit -> node_est) ->
    node_est)
    ref =
  ref (fun _dev ~bindings:_ _n compute -> compute ())

let rec estimate_schedule (dev : Device.t) sched =
  let nodes, edges = schedule_edges sched in
  (* A buffer written by several nodes cannot be pipelined safely: to
     preserve correctness the whole dataflow executes sequentially until
     multi-producer elimination (Alg. 3) has run (§6.4.1). *)
  let has_multi_producer =
    let writers = Hashtbl.create 16 in
    List.iter
      (fun n ->
        List.iteri
          (fun i v ->
            if Hida_d.operand_effect n i = `Read_write then
              Hashtbl.replace writers v.v_id
                (1 + Option.value (Hashtbl.find_opt writers v.v_id) ~default:0))
          (Op.operands n))
      nodes;
    Hashtbl.fold (fun _ c acc -> acc || c > 1) writers false
  in
  let bindings = Hida_d.node_bindings sched in
  let node_ests =
    List.map
      (fun n ->
        let inner_bindings = Hida_d.node_bindings n @ bindings in
        (n, estimate_node_or_nested dev ~bindings:inner_bindings n))
      nodes
  in
  let max_lat =
    List.fold_left (fun acc (_, e) -> max acc e.n_latency) 1 node_ests
  in
  (* Fork-join imbalance: a buffer crossing [slack] pipeline stages needs
     slack+1 ping-pong stages; fewer stages stall the pipeline (§6.4.2). *)
  let levels = stage_levels nodes edges in
  let resolve_arg =
    let table =
      List.map (fun (outer, inner) -> (inner.v_id, outer)) bindings
    in
    fun v -> match List.assoc_opt v.v_id table with Some o -> o | None -> v
  in
  let edge_depth buf =
    match Value.defining_op (resolve_arg buf) with
    | Some b when Hida_d.is_buffer b -> Hida_d.buffer_depth b
    | Some b when Hida_d.is_port b -> 64 (* soft FIFO in DRAM *)
    | Some b when Hida_d.is_stream b -> (
        match Value.typ (Op.result b 0) with
        | Stream { depth; _ } -> depth
        | _ -> 2)
    | _ -> 2
  in
  let stall =
    List.fold_left
      (fun acc (u, v, buf) ->
        let slack =
          Hashtbl.find levels v.o_id - Hashtbl.find levels u.o_id
        in
        max acc (max 1 (slack + 2 - edge_depth buf)))
      1 edges
  in
  (* Single-stage (non-ping-pong) buffers cannot hold two frames, so the
     producer and consumer of such an edge cannot overlap across frames:
     chains of depth-1 edges execute serially (the behaviour of dataflow
     legalizers without §5.2's automatic ping-pong buffers).  The
     serialized interval is the sum of node latencies over each connected
     group of depth-1 edges. *)
  let serialized_interval =
    let parent = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace parent n.o_id n.o_id) nodes;
    let rec find x =
      let p = Hashtbl.find parent x in
      if p = x then x
      else begin
        let r = find p in
        Hashtbl.replace parent x r;
        r
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    List.iter
      (fun (u, v, buf) -> if edge_depth buf < 2 then union u.o_id v.o_id)
      edges;
    let sums = Hashtbl.create 16 in
    List.iter
      (fun (n, e) ->
        let r = find n.o_id in
        let cur = Option.value (Hashtbl.find_opt sums r) ~default:0 in
        Hashtbl.replace sums r (cur + e.n_latency))
      node_ests;
    Hashtbl.fold (fun _ s acc -> max acc s) sums 0
  in
  let full_serial =
    List.fold_left (fun acc (_, e) -> acc + e.n_latency) 0 node_ests
  in
  let interval =
    if has_multi_producer then max (max_lat * stall) full_serial
    else max (max_lat * stall) serialized_interval
  in
  let latency =
    (* Critical path: sum of latencies along stage levels. *)
    let by_level = Hashtbl.create 16 in
    List.iter
      (fun (n, e) ->
        let l = Hashtbl.find levels n.o_id in
        let cur = Option.value (Hashtbl.find_opt by_level l) ~default:0 in
        Hashtbl.replace by_level l (max cur e.n_latency))
      node_ests;
    Hashtbl.fold (fun _ v acc -> acc + v) by_level 0
  in
  let resource =
    Resource.sum (List.map (fun (_, e) -> e.n_resource) node_ests)
  in
  let macs = List.fold_left (fun acc (_, e) -> acc + e.n_macs_per_frame) 0 node_ests in
  (latency, interval, resource, macs)

(* A node may contain a nested schedule (hierarchical dataflow); otherwise
   estimate its loop nest directly. *)
and estimate_node_or_nested dev ~bindings n =
  !node_memo_hook dev ~bindings n (fun () ->
      estimate_node_or_nested_fresh dev ~bindings n)

and estimate_node_or_nested_fresh dev ~bindings n =
  match Walk.find n ~pred:(fun o -> Hida_d.is_schedule o && not (Op.equal o n)) with
  | Some nested ->
      let lat, interval, res, macs = estimate_schedule dev nested in
      (* A schedule nested under loops inside the node (hierarchical
         dataflow) re-runs once per enclosing iteration. *)
      let reps =
        List.fold_left
          (fun acc l ->
            if Op.is_ancestor ~ancestor:n l then acc * max 1 (Affine_d.trip_count l)
            else acc)
          1
          (List.filter Affine_d.is_for (Op.ancestors nested))
      in
      {
        n_latency = lat + (interval * (reps - 1));
        n_interval = interval * reps;
        n_resource = res;
        n_macs_per_frame = macs * reps;
      }
  | None -> estimate_node dev ~bindings n

(* Estimate a whole function.  If it contains a top-level schedule, the
   design is a dataflow design; otherwise nodes are the outermost loop
   nests, executed sequentially. *)
let estimate_func (dev : Device.t) ?(batch = 1) func =
  let body = Func_d.entry_block func in
  let buffers =
    Walk.collect func ~pred:(fun op -> Hida_d.is_buffer op)
  in
  let streams = Walk.collect func ~pred:Hida_d.is_stream in
  let stream_res =
    Resource.sum
      (List.map
         (fun s ->
           match Value.typ (Op.result s 0) with
           | Stream { elem; depth } ->
               let bits = depth * Typ.bit_width elem in
               if bits <= 1024 then Resource.make ~luts:((bits + 63) / 64 + 16) ()
               else Resource.make ~bram18:((bits + 18_431) / 18_432) ~luts:16 ()
           | _ -> Resource.zero)
         streams)
  in
  let buffer_res =
    Resource.add stream_res (Resource.sum (List.map buffer_resource buffers))
  in
  let lat, interval, node_res, macs =
    match List.find_opt Hida_d.is_schedule (Block.ops body) with
    | Some sched -> estimate_schedule dev sched
    | None ->
        (* Sequential: each outermost loop nest is one stage (a nest may
           wrap a nested schedule — hierarchical dataflow). *)
        let nests = Affine_d.outermost_loops func in
        let ests =
          List.map (fun l -> estimate_node_or_nested dev ~bindings:[] l) nests
        in
        let total = List.fold_left (fun acc e -> acc + e.n_latency) 0 ests in
        let res = Resource.sum (List.map (fun e -> e.n_resource) ests) in
        let macs = List.fold_left (fun acc e -> acc + e.n_macs_per_frame) 0 ests in
        (max 1 total, max 1 total, res, macs)
  in
  let resource = Resource.add node_res buffer_res in
  (* Dominant element type of the design (datapath precision). *)
  let elem =
    let found = ref None in
    Walk.preorder func ~f:(fun op ->
        if !found = None && (Hida_d.is_buffer op || Hida_d.is_port op) then
          match Value.typ (Op.result op 0) with
          | Memref { elem; _ } -> found := Some elem
          | _ -> ());
    Option.value !found ~default:F32
  in
  (* When the DSP demand exceeds the device, the back-end instantiates the
     excess MACs with LUTs (the paper's explanation for VGG's >100% DSP
     efficiency).  LUT-mapped multipliers cost fabric instead. *)
  let resource =
    if resource.Resource.dsps > dev.dsps then begin
      let moved = resource.Resource.dsps - dev.dsps in
      let lut_per_mul = match elem with I8 | I16 -> 320 | _ -> 700 in
      let extra_luts = moved / dsp_per_mac ~elem * lut_per_mul in
      {
        resource with
        Resource.dsps = dev.dsps;
        luts = resource.Resource.luts + extra_luts;
        ffs = resource.Resource.ffs + extra_luts;
      }
    end
    else resource
  in
  let freq = Device.freq_hz dev in
  let throughput = freq /. float_of_int (max 1 interval) *. float_of_int batch in
  let mac_capacity =
    float_of_int resource.Resource.dsps /. float_of_int (dsp_per_mac ~elem)
  in
  let dsp_eff =
    if resource.Resource.dsps = 0 then 0.
    else throughput *. float_of_int macs /. (mac_capacity *. freq)
  in
  {
    d_latency = lat;
    d_interval = interval;
    d_resource = resource;
    d_macs = macs;
    d_throughput = throughput;
    d_dsp_efficiency = dsp_eff;
  }
