(* hida-compile: command-line front door to the compiler.

   Compiles a named workload (a PyTorch-style model from the zoo or a
   PolyBench C++ kernel) through the full HIDA pipeline, reports the QoR
   estimate and the cycle-level simulation, and optionally dumps the
   optimized IR or the emitted HLS C++. *)

open Cmdliner
open Hida_ir
open Ir
open Hida_dialects
open Hida_estimator
open Hida_core
open Hida_frontend

(* [@file.mlir] workloads: the file is read once up front (see
   [read_file_workload]) and the textual IR parsed once here; the
   builder hands out a deep clone per call ([fit] compiles repeatedly
   and the pipeline mutates the IR in place).  Cloning is a structural
   copy, far cheaper than re-lexing and re-verifying every iteration. *)
let build_ir_text_workload ~filename text =
  let m0 =
    match Hida_text.Parser.parse_string ~filename text with
    | Error d ->
        prerr_endline ("hida-compile: " ^ Hida_text.Parser.diag_to_string d);
        exit 1
    | Ok top -> (
        match Hida_text.Parser.module_and_func top with
        | Some (m, _f) -> m
        | None ->
            prerr_endline
              ("hida-compile: " ^ filename
             ^ ": expected a builtin.module or func.func at top level");
            exit 1)
  in
  let build () =
    let m = clone_op m0 in
    match Func_d.funcs m with
    | f :: _ -> (m, f)
    | [] ->
        prerr_endline ("hida-compile: " ^ filename ^ ": module has no function");
        exit 1
  in
  let _, f0 = build () in
  let has_nn =
    Walk.find f0 ~pred:(fun op ->
        String.length (Op.name op) > 3 && String.sub (Op.name op) 0 3 = "nn.")
    <> None
  in
  ((if has_nn then `Nn else `Memref), build)

(* Read an [@FILE] workload's bytes exactly once.  Both the --connect
   request and any local fallback compile run from this one snapshot,
   so a file edited mid-flight cannot make the fallback compile
   something different from what was sent to the server, and a retry
   never touches the disk again. *)
let read_file_workload name =
  if String.length name > 1 && name.[0] = '@' then begin
    let path = String.sub name 1 (String.length name - 1) in
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Some (path, text)
    | exception Sys_error msg ->
        prerr_endline ("hida-compile: " ^ msg);
        exit 1
  end
  else None

let build_workload name =
  if List.exists (fun e -> e.Models.e_name = name) Models.all then
    let e = Models.by_name name in
    (`Nn, fun () -> e.Models.e_build ())
  else if List.exists (fun e -> e.Polybench.e_name = name) Polybench.all then
    let e = Polybench.by_name name in
    (`Memref, fun () -> e.Polybench.e_build ())
  else if List.exists (fun e -> e.Polybench_extra.e_name = name) Polybench_extra.all
  then
    let e = Polybench_extra.by_name name in
    (`Memref, fun () -> e.Polybench_extra.e_build ())
  else if name = "listing1" then (`Memref, fun () -> Listing1.build ())
  else
    invalid_arg
      (Printf.sprintf
         "unknown workload %s (models: %s; kernels: %s; plus listing1)" name
         (String.concat ", " (List.map (fun e -> e.Models.e_name) Models.all))
         (String.concat ", "
            (List.map (fun e -> e.Polybench.e_name) Polybench.all
            @ List.map (fun e -> e.Polybench_extra.e_name) Polybench_extra.all)))

let mode_of_string = function
  | "ia+ca" | "iaca" -> Parallelize.ia_ca
  | "ia" -> Parallelize.ia_only
  | "ca" -> Parallelize.ca_only
  | "naive" -> Parallelize.naive
  | s -> invalid_arg ("unknown mode " ^ s ^ " (ia+ca | ia | ca | naive)")

(* Fail early with a clear message when --trace-json or -o points
   somewhere we cannot write, instead of an exception trace after a long
   compile. *)
let check_write_path ~what = function
  | None -> ()
  | Some path -> (
      try
        let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
        close_out oc
      with Sys_error msg ->
        prerr_endline ("hida-compile: cannot write " ^ what ^ ": " ^ msg);
        exit 1)

let write_file ~what path content =
  try
    let oc = open_out path in
    output_string oc content;
    close_out oc
  with Sys_error msg ->
    prerr_endline ("hida-compile: cannot write " ^ what ^ ": " ^ msg);
    exit 1

(* The --simulate report, shared by the local and --connect artifact
   paths (which used to duplicate it with a hardcoded frame count).
   Small runs keep the full trace for the Gantt timeline; sustained
   --sim-frames runs stay untraced (O(nodes x depth) memory) and report
   the streaming percentiles only. *)
let simulate_design ~device ~frames design =
  match Walk.collect design ~pred:Hida_d.is_schedule with
  | sched :: _ ->
      let trace = frames <= Hida_hlssim.Sim.trace_default_threshold in
      let r = Hida_hlssim.Sim_ir.simulate_schedule ~frames ~trace device sched in
      Printf.printf
        "simulation      : steady interval %.0f cycles, first frame %d cycles \
         (%d frames)\n"
        r.Hida_hlssim.Sim.r_steady_interval
        r.Hida_hlssim.Sim.r_first_frame_latency frames;
      let h = r.Hida_hlssim.Sim.r_interframe in
      if Hida_obs.Histogram.count h > 0 then
        Printf.printf
          "inter-frame gap : p50 %d / p90 %d / p99 %d cycles (max %d)\n"
          (Hida_obs.Histogram.percentile h 50.)
          (Hida_obs.Histogram.percentile h 90.)
          (Hida_obs.Histogram.percentile h 99.)
          (Hida_obs.Histogram.max_value h);
      if trace then
        Printf.printf "pipeline timeline (first 4 frames):\n%s"
          (Hida_hlssim.Sim.gantt ~frames:4 r)
  | [] -> Printf.printf "simulation      : (no dataflow schedule)\n"

(* Client mode: ship the compile to a running hida-serve instance and
   render the artifact it returns.  The reply carries the canonical IR
   text, so --dump-ir/-o write it directly and --emit-cpp/--simulate
   re-parse it locally (the parser/printer round-trip law makes the
   parsed design identical to the server's). *)
let run_serve ~socket ~device ~src workload pf tile mode_name opts emit_cpp
    dump_ir out_path simulate sim_frames metrics_json =
  let open Hida_serve in
  match Client.compile ~socket src opts with
  | Error e -> Error e
  | Ok r ->
      let meta = r.Protocol.cr_meta in
      Printf.printf "workload        : %s (served)\n" workload;
      Printf.printf "device          : %s\n" device.Device.name;
      Printf.printf "mode            : %s, max parallel factor %d, tile %d\n"
        mode_name pf tile;
      Printf.printf "server          : %s, %s, %.3f ms round trip\n" socket
        (if r.Protocol.cr_cached then "artifact cache hit"
         else if r.Protocol.cr_coalesced then "coalesced with in-flight compile"
         else "cold compile")
        (float_of_int r.Protocol.cr_server_ns /. 1e6);
      Printf.printf "compile time    : %.3f s (of the run that built the \
                     artifact)\n"
        meta.Protocol.am_compile_seconds;
      Printf.printf "latency         : %d cycles\n" meta.Protocol.am_latency;
      Printf.printf "interval        : %d cycles\n" meta.Protocol.am_interval;
      Printf.printf "throughput      : %.2f samples/s @ %.0f MHz\n"
        meta.Protocol.am_throughput device.Device.freq_mhz;
      Printf.printf "DSP efficiency  : %.1f%%\n"
        (100. *. meta.Protocol.am_dsp_efficiency);
      Printf.printf "artifact        : %s\n" meta.Protocol.am_key;
      (match metrics_json with
      | None -> ()
      | Some path ->
          let status =
            match Client.status ~socket with Ok j -> j | Error _ -> Json.Null
          in
          let json =
            Json.Obj
              [
                ("workload", Json.Str workload);
                ("socket", Json.Str socket);
                ("cached", Json.Bool r.Protocol.cr_cached);
                ("coalesced", Json.Bool r.Protocol.cr_coalesced);
                ("server_ns", Json.Int r.Protocol.cr_server_ns);
                ( "artifact",
                  Json.Obj
                    [
                      ("key", Json.Str meta.Protocol.am_key);
                      ("workload", Json.Str meta.Protocol.am_workload);
                      ("latency", Json.Int meta.Protocol.am_latency);
                      ("interval", Json.Int meta.Protocol.am_interval);
                      ("throughput", Json.Float meta.Protocol.am_throughput);
                      ( "dsp_efficiency",
                        Json.Float meta.Protocol.am_dsp_efficiency );
                      ( "compile_seconds",
                        Json.Float meta.Protocol.am_compile_seconds );
                    ] );
                ("server_status", status);
              ]
          in
          write_file ~what:"metrics file" path (Json.to_string json ^ "\n");
          Printf.printf "metrics written : %s\n" path);
      (if dump_ir then
         (* [cr_ir] is already newline-terminated canonical text. *)
         let text = r.Protocol.cr_ir in
         match out_path with
         | Some path ->
             write_file ~what:"output file" path text;
             Printf.printf "ir written      : %s\n" path
         | None ->
             print_endline "---- optimized IR ----";
             print_string text);
      (if emit_cpp || simulate then
         let design =
           match
             Hida_text.Parser.parse_string ~filename:"<artifact>"
               r.Protocol.cr_ir
           with
           | Ok top -> (
               match Hida_text.Parser.module_and_func top with
               | Some (_m, f) -> f
               | None -> top)
           | Error d ->
               prerr_endline
                 ("hida-compile: served artifact does not parse: "
                 ^ Hida_text.Parser.diag_to_string d);
               exit 1
         in
         if simulate then simulate_design ~device ~frames:sim_frames design;
         if emit_cpp then
           let text = Hida_emitter.Emit_cpp.emit_func design in
           match out_path with
           | Some path ->
               write_file ~what:"output file" path text;
               Printf.printf "cpp written     : %s\n" path
           | None ->
               print_endline "---- emitted HLS C++ ----";
               print_string text);
      Ok ()

let rec run workload device_name pf tile mode_name jobs no_fusion no_balance
    no_dataflow fit analyze emit_cpp dump_ir out_path simulate sim_frames
    timing trace_json print_ir_after remarks stats profile metrics_json connect
    incr_cache =
  try run_checked workload device_name pf tile mode_name jobs no_fusion
      no_balance no_dataflow fit analyze emit_cpp dump_ir out_path simulate
      sim_frames timing trace_json print_ir_after remarks stats profile
      metrics_json connect incr_cache
  with Invalid_argument msg ->
    prerr_endline ("hida-compile: " ^ msg);
    exit 1

and run_checked workload device_name pf tile mode_name jobs no_fusion no_balance
    no_dataflow fit analyze emit_cpp dump_ir out_path simulate sim_frames timing
    trace_json print_ir_after remarks stats profile metrics_json connect
    incr_cache =
  let device = Device.by_name device_name in
  let mode = mode_of_string mode_name in
  if sim_frames <= 0 then
    invalid_arg
      (Printf.sprintf "--sim-frames must be a positive frame count (got %d)"
         sim_frames);
  check_write_path ~what:"trace file" trace_json;
  check_write_path ~what:"metrics file" metrics_json;
  check_write_path ~what:"output file" out_path;
  if out_path <> None && emit_cpp && dump_ir then begin
    prerr_endline
      "hida-compile: -o takes exactly one of --dump-ir or --emit-cpp (or \
       neither, which defaults to the IR)";
    exit 1
  end;
  (* -o with no explicit choice writes the optimized IR. *)
  let dump_ir = dump_ir || (out_path <> None && not emit_cpp) in
  (* The wire protocol carries the plain compile surface; flags that need
     the in-process report (fit, analysis gate, timing, traces, profiles)
     force a local compile even under --connect. *)
  let representable_remotely =
    (not (fit || analyze || timing || remarks || stats || profile))
    && trace_json = None && print_ir_after = None
  in
  (* [@FILE] bytes are read exactly once, before anything else touches
     the workload; the server request and the local (fallback) compile
     share this snapshot. *)
  let file_text = read_file_workload workload in
  let fallback_reason = ref None in
  (match connect with
  | Some socket when representable_remotely -> (
      let src =
        match file_text with
        | Some (_, text) -> Hida_serve.Protocol.Ir_text text
        | None -> Hida_serve.Protocol.Zoo workload
      in
      let sopts =
        {
          Hida_serve.Protocol.co_device = device_name;
          co_mode = mode_name;
          co_pf = pf;
          co_tile = tile;
          co_jobs = jobs;
          co_fusion = not no_fusion;
          co_balance = not no_balance;
          co_dataflow = not no_dataflow;
        }
      in
      match
        run_serve ~socket ~device ~src workload pf tile mode_name sopts
          emit_cpp dump_ir out_path simulate sim_frames metrics_json
      with
      | Ok () -> exit 0
      | Error e ->
          Printf.eprintf "hida-compile: %s; falling back to a local compile\n%!"
            e;
          fallback_reason := Some e)
  | Some _ ->
      prerr_endline
        "hida-compile: the requested flags need an in-process compile; \
         ignoring --connect and compiling locally";
      fallback_reason := Some "the requested flags need an in-process compile"
  | None -> ());
  (* --incr-cache: persistent subtree/artifact store.  Loaded before the
     compile and attached behind the global QoR cache, so every subtree
     whose content hash is unchanged since the last run replays its DSE
     plan, candidate costs and node estimates instead of recomputing
     them; saved (atomically) after the compile. *)
  let incr_store =
    match incr_cache with
    | None -> None
    | Some dir ->
        let store = Blob_store.shared () in
        (match Blob_store.load store ~dir with
        | Ok n ->
            if n > 0 then
              Printf.printf "incr cache      : %d entries loaded from %s\n" n
                dir
        | Error e ->
            Printf.eprintf "hida-compile: incr cache: %s (starting cold)\n%!" e);
        Qor_cache.set_backing (Qor_cache.global ()) (Some store);
        Some (store, dir)
  in
  let opts =
    {
      Driver.default with
      mode;
      max_parallel_factor = pf;
      jobs;
      tile_size = tile;
      enable_fusion = not no_fusion;
      enable_balancing = not no_balance;
      enable_dataflow = not no_dataflow;
      analyze;
      profile;
      print_ir_after;
    }
  in
  let path, build =
    match file_text with
    | Some (filename, text) -> build_ir_text_workload ~filename text
    | None -> build_workload workload
  in
  let report =
    if fit then Driver.fit ~opts ~device ~path build
    else
      let _m, f = build () in
      match path with
      | `Nn -> Driver.run_nn ~opts ~device f
      | `Memref -> Driver.run_memref ~opts ~device f
  in
  (match incr_store with
  | None -> ()
  | Some (store, dir) -> (
      match Blob_store.save store ~dir with
      | Ok n -> Printf.printf "incr cache      : %d entries saved to %s\n" n dir
      | Error e ->
          Printf.eprintf "hida-compile: incr cache: cannot save: %s\n%!" e));
  (* A --connect downgrade is an explicit Analysis remark on the local
     report, not a silent substitution. *)
  let report =
    match !fallback_reason with
    | None -> report
    | Some why ->
        {
          report with
          Driver.remarks =
            {
              Hida_obs.Remark.r_pass = "driver";
              r_severity = Hida_obs.Remark.Analysis;
              r_loc = None;
              r_msg = "--connect fell back to a local compile: " ^ why;
            }
            :: report.Driver.remarks;
        }
  in
  let e = report.Driver.estimate in
  Printf.printf "workload        : %s (%s path)\n" workload
    (match path with `Nn -> "PyTorch" | `Memref -> "C++");
  Printf.printf "device          : %s\n" device.Device.name;
  Printf.printf "mode            : %s, max parallel factor %d, tile %d\n"
    (Parallelize.mode_name mode) pf tile;
  Printf.printf "compile time    : %.3f s\n" report.Driver.compile_seconds;
  Printf.printf "latency         : %d cycles\n" e.Qor.d_latency;
  Printf.printf "interval        : %d cycles\n" e.Qor.d_interval;
  Printf.printf "throughput      : %.2f samples/s @ %.0f MHz\n" e.Qor.d_throughput
    device.Device.freq_mhz;
  Printf.printf "MACs per sample : %d\n" e.Qor.d_macs;
  Printf.printf "DSP efficiency  : %.1f%%\n" (100. *. e.Qor.d_dsp_efficiency);
  Printf.printf "resources       : %s (util %.1f%%, %s)\n"
    (Resource.to_string e.Qor.d_resource)
    (100. *. Resource.utilization device e.Qor.d_resource)
    (if Resource.fits device e.Qor.d_resource then "fits" else "DOES NOT FIT");
  if analyze then begin
    match report.Driver.analysis with
    | [] -> Printf.printf "analysis        : clean (no diagnostics)\n"
    | ds ->
        Printf.printf "analysis        : %d diagnostic(s)\n" (List.length ds);
        List.iter
          (fun d -> print_endline ("  " ^ Hida_analysis.Analysis.to_string d))
          ds
  end;
  if timing then begin
    print_endline "---- timing (hierarchical) ----";
    print_string (Hida_obs.Trace.report report.Driver.trace);
    let verify_total =
      List.fold_left
        (fun acc s -> acc +. s.Pass.verify_seconds)
        0. report.Driver.pass_timing
    in
    Printf.printf "  %-46s %10.4f\n" "verification (separate)" verify_total
  end;
  if remarks then begin
    print_endline "---- optimization remarks ----";
    if report.Driver.remarks = [] then print_endline "  (none)"
    else
      List.iter
        (fun r -> print_endline ("  " ^ Hida_obs.Remark.to_string r))
        report.Driver.remarks
  end;
  if stats then begin
    print_endline "---- metrics ----";
    print_string (Hida_obs.Metrics.to_string report.Driver.metrics);
    print_endline "---- per-pass IR deltas ----";
    List.iter
      (fun pd ->
        Printf.printf "  %-42s %s\n" pd.Hida_obs.Ir_stats.pd_pass
          (Hida_obs.Ir_stats.delta_to_string pd))
      report.Driver.pass_deltas
  end;
  (match trace_json with
  | None -> ()
  | Some path -> (
      try
        Hida_obs.Trace.write_chrome_file report.Driver.trace path;
        Printf.printf "trace written   : %s (open in chrome://tracing)\n" path
      with Sys_error msg ->
        prerr_endline ("hida-compile: cannot write trace file: " ^ msg);
        exit 1));
  (if simulate then
     (* Re-install the compile's scope so the simulator's per-frame step
        histogram lands in the same metrics registry. *)
     Hida_obs.Scope.with_scope report.Driver.obs_scope (fun () ->
         simulate_design ~device ~frames:sim_frames report.Driver.design));
  (let m = report.Driver.metrics in
   let c name = Hida_obs.Metrics.counter m name in
   let cache = Qor_cache.global () in
   if profile then begin
     let pp = Hida_obs.Histogram.pp_ns in
     print_endline "---- profile ----";
     Printf.printf "  %-22s %d\n" "jobs" jobs;
     Printf.printf "  %-22s %d hits, %d misses\n" "qor cache"
       (c "qor.cache.hits") (c "qor.cache.misses");
     let acq = c "qor.cache.lock_acquires"
     and blk = c "qor.cache.lock_blocked"
     and wait = c "qor.cache.lock_wait_ns" in
     Printf.printf "  %-22s %d acquires, %d blocked (%.2f%%), %s total wait\n"
       "cache lock" acq blk
       (if acq = 0 then 0. else 100. *. float_of_int blk /. float_of_int acq)
       (pp wait);
     Printf.printf "  %-22s %s\n" "lock wait"
       (Hida_obs.Histogram.to_string (Qor_cache.wait_histogram cache));
     let busy = c "parallelize.pool.busy_ns"
     and slot_ns = c "parallelize.pool.slots_ns" in
     if slot_ns > 0 then
       Printf.printf "  %-22s %s busy of %s slot-time (%.1f%% utilization)\n"
         "worker pool" (pp busy) (pp slot_ns)
         (100. *. float_of_int busy /. float_of_int slot_ns);
     (let tasks = c "parallelize.pool.tasks"
      and steals = c "parallelize.pool.steals"
      and inline_levels = c "parallelize.pool.inline_levels" in
      if tasks > 0 || inline_levels > 0 then
        Printf.printf
          "  %-22s %d tasks, %d stolen (%.1f%%), %d level(s) run inline\n"
          "work stealing" tasks steals
          (if tasks = 0 then 0.
           else 100. *. float_of_int steals /. float_of_int tasks)
          inline_levels);
     Printf.printf "  %-22s %s total\n" "barrier wait"
       (pp (c "dse.barrier_wait_total_ns"));
     List.iter
       (fun (label, name) ->
         match Hida_obs.Metrics.histogram m name with
         | Some h ->
             Printf.printf "  %-22s %s\n" label (Hida_obs.Histogram.to_string h)
         | None -> ())
       [
         ("candidate eval", "dse.candidate_eval_ns");
         ("node search", "dse.node_search_ns");
         ("barrier wait dist", "dse.barrier_wait_ns");
         ("sim frame step", "sim.frame_step_ns");
       ];
     match Qor_cache.per_domain cache with
     | [] -> ()
     | domains ->
         print_endline "  per-domain cache activity:";
         Printf.printf "    %-8s %10s %10s %10s %10s %12s\n" "domain" "hits"
           "misses" "acquires" "blocked" "wait";
         List.iter
           (fun (d : Qor_cache.domain_stats) ->
             Printf.printf "    %-8d %10d %10d %10d %10d %12s\n"
               d.Qor_cache.ds_domain d.Qor_cache.ds_hits d.Qor_cache.ds_misses
               d.Qor_cache.ds_acquires d.Qor_cache.ds_blocked
               (pp d.Qor_cache.ds_wait_ns))
           domains
   end;
   match metrics_json with
   | None -> ()
   | Some path ->
       let wait_h = Qor_cache.wait_histogram cache in
       let domains =
         String.concat ","
           (List.map
              (fun (d : Qor_cache.domain_stats) ->
                Printf.sprintf
                  "{\"domain\":%d,\"hits\":%d,\"misses\":%d,\"acquires\":%d,\"blocked\":%d,\"wait_ns\":%d}"
                  d.Qor_cache.ds_domain d.Qor_cache.ds_hits
                  d.Qor_cache.ds_misses d.Qor_cache.ds_acquires
                  d.Qor_cache.ds_blocked d.Qor_cache.ds_wait_ns)
              (Qor_cache.per_domain cache))
       in
       let json =
         Printf.sprintf
           "{\"workload\":\"%s\",\"jobs\":%d,\"metrics\":%s,\"qor_cache\":{\"hits\":%d,\"misses\":%d,\"lock_acquires\":%d,\"lock_blocked\":%d,\"lock_wait_ns\":%d,\"lock_wait_p50_ns\":%d,\"lock_wait_p99_ns\":%d,\"domains\":[%s]}}\n"
           (Hida_obs.Trace.json_escape workload)
           jobs
           (Hida_obs.Metrics.to_json m)
           (c "qor.cache.hits") (c "qor.cache.misses")
           (c "qor.cache.lock_acquires")
           (c "qor.cache.lock_blocked")
           (c "qor.cache.lock_wait_ns")
           (Hida_obs.Histogram.percentile wait_h 50.)
           (Hida_obs.Histogram.percentile wait_h 99.)
           domains
       in
       write_file ~what:"metrics file" path json;
       Printf.printf "metrics written : %s\n" path);
  (if dump_ir then
     let text = Printer.op_to_string report.Driver.design ^ "\n" in
     match out_path with
     | Some path ->
         write_file ~what:"output file" path text;
         Printf.printf "ir written      : %s\n" path
     | None ->
         print_endline "---- optimized IR ----";
         print_string text);
  (if emit_cpp then
     let text = Hida_emitter.Emit_cpp.emit_func report.Driver.design in
     match out_path with
     | Some path ->
         write_file ~what:"output file" path text;
         Printf.printf "cpp written     : %s\n" path
     | None ->
         print_endline "---- emitted HLS C++ ----";
         print_string text);
  (* A gated compile fails (after all requested outputs are written) when
     the static checker found problems. *)
  if analyze && report.Driver.analysis <> [] then exit 1

let workload =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Model (lenet, resnet18, ...), kernel (2mm, atax, ...), or \
               \\@FILE.mlir to compile a textual-IR file.")

let device =
  Arg.(value & opt string "zu3eg" & info [ "device"; "d" ] ~docv:"DEVICE"
         ~doc:"Target FPGA: pynq-z2, zu3eg or vu9p-slr.")

let pf =
  Arg.(value & opt int 32 & info [ "parallel-factor"; "p" ] ~docv:"N"
         ~doc:"Maximum parallel factor for the dataflow parallelization.")

let tile =
  Arg.(value & opt int 32 & info [ "tile" ] ~docv:"N"
         ~doc:"External-memory tile size (burst length).")

let mode =
  Arg.(value & opt string "ia+ca" & info [ "mode"; "m" ] ~docv:"MODE"
         ~doc:"Parallelization mode: ia+ca, ia, ca or naive.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for the per-node design-space exploration \
               (the produced design is identical whatever the value).")

let no_fusion =
  Arg.(value & flag & info [ "no-fusion" ] ~doc:"Disable task fusion (Alg. 2).")

let no_balance =
  Arg.(value & flag & info [ "no-balance" ] ~doc:"Disable data-path balancing.")

let no_dataflow =
  Arg.(value & flag & info [ "no-dataflow" ] ~doc:"Sequential (non-dataflow) design.")

let fit =
  Arg.(value & flag & info [ "fit" ]
         ~doc:"Search for the largest parallel factor fitting the device.")

let analyze =
  Arg.(value & flag & info [ "analyze"; "a" ]
         ~doc:"Run the static dataflow checker (deadlock, channel capacity, \
               buffer hazards) as a compile gate; exit non-zero on any \
               diagnostic.")

let emit_cpp =
  Arg.(value & flag & info [ "emit-cpp" ] ~doc:"Print the emitted HLS C++.")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the optimized IR.")

let out_path =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the --dump-ir IR (default) or the --emit-cpp C++ to \
               $(docv) instead of stdout.")

let simulate =
  Arg.(value & flag & info [ "simulate"; "s" ]
         ~doc:"Run the cycle-level dataflow simulator on the result.")

let sim_frames =
  Arg.(value & opt int 64 & info [ "sim-frames" ] ~docv:"N"
         ~doc:"Dataflow frames to simulate under --simulate (default 64; \
               must be positive).  Large counts run untraced with \
               O(nodes) memory and report inter-frame p50/p90/p99 \
               percentiles, modeling sustained streaming traffic.")

let timing =
  Arg.(value & flag & info [ "timing" ]
         ~doc:"Print a hierarchical per-pass timing table (mlir's -mlir-timing).")

let trace_json =
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON of the compile to $(docv) \
               (open in chrome://tracing or Perfetto).")

let print_ir_after =
  Arg.(value & opt (some string) None & info [ "print-ir-after" ] ~docv:"PASS"
         ~doc:"Dump the IR after every pass whose name contains $(docv) \
               (use \"all\" for every pass).")

let remarks =
  Arg.(value & flag & info [ "remarks" ]
         ~doc:"Print the optimization remarks emitted by the passes.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print pass metrics (counters/gauges) and per-pass IR deltas.")

let profile =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Detailed multicore profiling: per-candidate DSE spans and \
               barrier-wait spans in the trace, plus a contention report \
               (cache-lock wait, worker-pool utilization, latency \
               histograms).  Never changes the produced design.")

let metrics_json =
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
         ~doc:"Write a machine-readable JSON snapshot of the metrics, \
               latency histograms and qor-cache contention counters to \
               $(docv).")

let connect =
  Arg.(value & opt (some string) None & info [ "connect"; "c" ] ~docv:"SOCK"
         ~doc:"Compile through a running hida-serve instance listening on \
               the Unix socket $(docv); identical requests are answered \
               from its content-addressed artifact cache.  Falls back to a \
               local compile when the server is unreachable.")

let incr_cache =
  Arg.(value & opt (some string) None & info [ "incr-cache" ] ~docv:"DIR"
         ~doc:"Persist the subtree-result store (DSE plans, candidate \
               costs, node estimates keyed by content hashes) in $(docv) \
               across runs: a recompile after an edit re-optimizes only \
               the subtrees whose hashes changed.  The produced design is \
               byte-identical with or without the cache.")

let cmd =
  let doc = "compile a workload with the HIDA dataflow HLS pipeline" in
  Cmd.v
    (Cmd.info "hida-compile" ~doc)
    Term.(
      const run $ workload $ device $ pf $ tile $ mode $ jobs $ no_fusion
      $ no_balance $ no_dataflow $ fit $ analyze $ emit_cpp $ dump_ir
      $ out_path $ simulate $ sim_frames $ timing $ trace_json
      $ print_ir_after $ remarks $ stats $ profile $ metrics_json $ connect
      $ incr_cache)

let () = exit (Cmd.eval cmd)
