(* hida-serve: the persistent compile server's front door.

     hida-serve serve   [--socket S] [--workers N] [--queue-limit N]
                        [--cache-mb N] [--verbose]
     hida-serve status  [--socket S] [--json]
     hida-serve ping    [--socket S]
     hida-serve stop    [--socket S]

   `serve` runs in the foreground (CI and the bench put it in the
   background themselves); `status` renders the server's cache /
   coalescing / latency metrics, `stop` asks for a clean shutdown. *)

open Cmdliner
open Hida_serve

let socket =
  Arg.(
    value
    & opt string Server.default_config.Server.cf_socket
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the server listens on.")

(* ---- serve ---- *)

let serve socket workers queue_limit cache_mb verbose =
  let cfg =
    {
      Server.cf_socket = socket;
      cf_workers = workers;
      cf_queue_limit = queue_limit;
      cf_cache_bytes = cache_mb * 1024 * 1024;
      cf_verbose = verbose;
    }
  in
  match Server.run cfg with
  | () -> 0
  | exception Failure msg ->
      prerr_endline ("hida-serve: " ^ msg);
      1
  | exception Unix.Unix_error (e, fn, arg) ->
      prerr_endline
        (Printf.sprintf "hida-serve: %s(%s): %s" fn arg (Unix.error_message e));
      1

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt int Server.default_config.Server.cf_workers
      & info [ "workers"; "w" ] ~docv:"N"
          ~doc:"Connection-handling worker domains.")
  in
  let queue_limit =
    Arg.(
      value
      & opt int Server.default_config.Server.cf_queue_limit
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Pending-connection bound; beyond it clients are answered \
             \"busy\" immediately instead of queueing.")
  in
  let cache_mb =
    Arg.(
      value
      & opt int (Server.default_config.Server.cf_cache_bytes / (1024 * 1024))
      & info [ "cache-mb" ] ~docv:"MiB"
          ~doc:
            "Artifact-store budget; least-recently-used artifacts are \
             evicted beyond it.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Log one line per request to stderr.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"run the compile server (foreground)")
    Term.(const serve $ socket $ workers $ queue_limit $ cache_mb $ verbose)

(* ---- status ---- *)

let indent_of depth = String.make (2 * depth) ' '

(* Human rendering of the stats object: objects become indented
   sections, leaves become aligned key/value lines. *)
let rec print_stats depth = function
  | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Obj _ when k = "metrics" ->
              () (* raw registry dump: JSON-only detail *)
          | Json.Obj _ ->
              Printf.printf "%s%s:\n" (indent_of depth) k;
              print_stats (depth + 1) v
          | leaf ->
              Printf.printf "%s%-18s %s\n" (indent_of depth) k
                (match leaf with
                | Json.Str s -> s
                | Json.Null -> "-"
                | other -> Json.to_string other))
        fields
  | other -> Printf.printf "%s%s\n" (indent_of depth) (Json.to_string other)

let status socket as_json =
  match Client.status ~socket with
  | Error e ->
      prerr_endline ("hida-serve: " ^ e);
      1
  | Ok stats ->
      if as_json then print_endline (Json.to_string stats)
      else print_stats 0 stats;
      0

let status_cmd =
  let as_json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw stats object as JSON.")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"query a running server's metrics")
    Term.(const status $ socket $ as_json)

(* ---- ping / stop ---- *)

let simple name doc f =
  let run socket =
    match f ~socket with
    | Ok () ->
        print_endline ("hida-serve: " ^ name ^ " ok");
        0
    | Error e ->
        prerr_endline ("hida-serve: " ^ e);
        1
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ socket)

let ping_cmd = simple "ping" "check that a server is alive" Client.ping
let stop_cmd = simple "stop" "ask a running server to shut down" Client.stop

let cmd =
  Cmd.group
    (Cmd.info "hida-serve"
       ~doc:"HIDA compile server: compiler-as-a-service with a \
             content-addressed artifact cache")
    [ serve_cmd; status_cmd; ping_cmd; stop_cmd ]

let () = exit (Cmd.eval' cmd)
