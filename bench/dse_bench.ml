(* DSE benchmark: cold / warm / parallel timing of the per-node
   design-space exploration with the memoized QoR cache.

   For every workload the pipeline is run up to (but excluding) the
   parallelization pass on freshly built IR; the timed section is then
   exactly [Parallelize.run] (per-node DSE) followed by
   [Qor.estimate_func]:

     cold      jobs=1, process-wide cache cleared first
     warm      jobs=1, cache still populated by the cold run, on a
               freshly rebuilt (byte-identical) IR — hits skip whole
               searches and node estimates
     parallel  jobs=N (N = recommended domain count), cache cleared

   Results are written to BENCH_dse.json (per-workload milliseconds,
   speedups, warm-run cache counters, geomeans over the set). *)

open Hida_ir
open Hida_estimator
open Hida_core
open Hida_frontend

type spec = {
  w_name : string;
  w_path : [ `Nn | `Memref ];
  w_build : unit -> Ir.op;
}

let memref_spec (e : Polybench.entry) =
  {
    w_name = e.Polybench.e_name;
    w_path = `Memref;
    w_build = (fun () -> snd (e.Polybench.e_build ()));
  }

let memref_extra_spec (e : Polybench_extra.entry) =
  {
    w_name = e.Polybench_extra.e_name;
    w_path = `Memref;
    w_build = (fun () -> snd (e.Polybench_extra.e_build ()));
  }

let nn_spec (e : Models.entry) =
  {
    w_name = e.Models.e_name;
    w_path = `Nn;
    w_build = (fun () -> snd (e.Models.e_build ()));
  }

(* Pipeline prefix up to the parallelization pass (mirrors [Driver]). *)
let prep spec =
  let f = spec.w_build () in
  Hida_dialects.Canonicalize.run f;
  Construct.run f;
  Fusion.run f;
  (match spec.w_path with
  | `Memref -> Lowering.lower_memref_func f
  | `Nn -> ignore (Lowering.lower_nn_func f));
  Multi_producer.run f;
  Balance.run f;
  f

let device_of = function `Memref -> Device.zu3eg | `Nn -> Device.vu9p_slr

(* A large parallel factor makes the timed section search-dominated
   (the divisor lattice grows with the factor), which is what this bench
   is about; the compile benches cover the pf=32 default. *)
let max_pf = 256

let dse_once ~jobs device f =
  ignore (Parallelize.run ~jobs ~max_parallel_factor:max_pf f);
  ignore (Qor.estimate_func device f)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  f ();
  1000. *. (Unix.gettimeofday () -. t0)

let min_over n f =
  let rec go best k = if k = 0 then best else go (min best (f ())) (k - 1) in
  go (f ()) (n - 1)

type row = {
  b_name : string;
  b_path : string;
  b_cold_ms : float;
  b_warm_ms : float;
  b_parallel_ms : float;
  b_hits : int;
  b_misses : int;
  b_pool_tasks : int;
  b_pool_steals : int;
}

let bench_workload ~reps ~par_jobs spec =
  let cache = Qor_cache.global () in
  let device = device_of spec.w_path in
  (* Cold: cleared cache, sequential. *)
  let cold_ms =
    min_over reps (fun () ->
        let f = prep spec in
        Qor_cache.clear cache;
        time_ms (fun () -> dse_once ~jobs:1 device f))
  in
  (* Populate once more so every warm rep starts fully cached. *)
  (let f = prep spec in
   Qor_cache.clear cache;
   dse_once ~jobs:1 device f);
  let h0, m0 = Qor_cache.counters cache in
  let warm_ms =
    min_over reps (fun () ->
        let f = prep spec in
        time_ms (fun () -> dse_once ~jobs:1 device f))
  in
  let h1, m1 = Qor_cache.counters cache in
  (* Parallel: cleared cache, the shared work-stealing pool.  Pool
     counters are process-cumulative, so record the delta over the
     parallel reps (per-rep average, like the cache counters). *)
  let p0 = Domain_pool.stats () in
  let parallel_ms =
    min_over reps (fun () ->
        let f = prep spec in
        Qor_cache.clear cache;
        time_ms (fun () -> dse_once ~jobs:par_jobs device f))
  in
  let p1 = Domain_pool.stats () in
  {
    b_name = spec.w_name;
    b_path = (match spec.w_path with `Memref -> "memref" | `Nn -> "nn");
    b_cold_ms = cold_ms;
    b_warm_ms = warm_ms;
    b_parallel_ms = parallel_ms;
    b_hits = (h1 - h0) / reps;
    b_misses = (m1 - m0) / reps;
    b_pool_tasks = (p1.Domain_pool.st_tasks - p0.Domain_pool.st_tasks) / reps;
    b_pool_steals =
      (p1.Domain_pool.st_steals - p0.Domain_pool.st_steals) / reps;
  }

let json_of_rows ~par_jobs ~reps rows =
  let buf = Buffer.create 4096 in
  let speedup cold t = if t > 0. then cold /. t else nan in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("  " ^ Util.host_provenance_json () ^ ",\n");
  Buffer.add_string buf (Printf.sprintf "  \"max_parallel_factor\": %d,\n" max_pf);
  Buffer.add_string buf (Printf.sprintf "  \"parallel_jobs\": %d,\n" par_jobs);
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"path\": %S, \"cold_ms\": %.3f, \"warm_ms\": \
            %.3f, \"parallel_ms\": %.3f, \"warm_speedup\": %.2f, \
            \"parallel_speedup\": %.2f, \"warm_cache_hits\": %d, \
            \"warm_cache_misses\": %d, \"pool_tasks\": %d, \"pool_steals\": \
            %d}%s\n"
           r.b_name r.b_path r.b_cold_ms r.b_warm_ms r.b_parallel_ms
           (speedup r.b_cold_ms r.b_warm_ms)
           (speedup r.b_cold_ms r.b_parallel_ms)
           r.b_hits r.b_misses r.b_pool_tasks r.b_pool_steals
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  let warm = List.map (fun r -> speedup r.b_cold_ms r.b_warm_ms) rows in
  let par = List.map (fun r -> speedup r.b_cold_ms r.b_parallel_ms) rows in
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_warm_speedup\": %.2f,\n" (Util.geomean warm));
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_parallel_speedup\": %.2f\n" (Util.geomean par));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run ?(smoke = false) ?(quick = false) () =
  Util.header
    (if smoke then "DSE benchmark (smoke: one workload)"
     else "DSE benchmark: cold / warm / parallel per-node exploration");
  let reps = if smoke then 1 else 3 in
  let par_jobs = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let specs =
    if smoke then [ memref_spec (Polybench.by_name "2mm") ]
    else if quick then
      List.map
        (fun n -> memref_spec (Polybench.by_name n))
        [ "2mm"; "3mm"; "atax"; "bicg"; "gesummv" ]
      @ [ nn_spec (Models.by_name "lenet") ]
    else
      List.map memref_spec Polybench.all
      @ List.map memref_extra_spec Polybench_extra.all
      @ List.map (fun n -> nn_spec (Models.by_name n))
          [ "lenet"; "mobilenet"; "resnet18" ]
  in
  Qor_cache.install (Qor_cache.global ());
  Printf.printf "%-14s %-7s %10s %10s %10s %7s %7s\n" "workload" "path"
    "cold ms" "warm ms" "par ms" "warm x" "par x";
  let rows =
    List.map
      (fun spec ->
        let r = bench_workload ~reps ~par_jobs spec in
        Printf.printf "%-14s %-7s %10.2f %10.2f %10.2f %7.2f %7.2f\n" r.b_name
          r.b_path r.b_cold_ms r.b_warm_ms r.b_parallel_ms
          (r.b_cold_ms /. r.b_warm_ms)
          (r.b_cold_ms /. r.b_parallel_ms);
        r)
      specs
  in
  let json = json_of_rows ~par_jobs ~reps rows in
  let oc = open_out "BENCH_dse.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\ngeomeans: warm %.2fx, parallel(%d jobs) %.2fx — written to \
     BENCH_dse.json\n"
    (Util.geomean (List.map (fun r -> r.b_cold_ms /. r.b_warm_ms) rows))
    par_jobs
    (Util.geomean (List.map (fun r -> r.b_cold_ms /. r.b_parallel_ms) rows))
