(* Profiling benchmark: where does the parallel-DSE wall time go?

   For each workload of the nn zoo the pipeline runs up to (but
   excluding) the parallelization pass on freshly built IR; the
   per-node DSE then runs under an observation scope at jobs = 1, 2
   and 4 on a cleared cache, and the profiling layer's counters
   decompose the wall time into named buckets:

     qor_cache_lock_wait_ms   time worker domains spent blocked on the
                              memo cache's table mutex
     level_barrier_wait_ms    time pool slots sat at the end-of-level
                              barrier after running out of tasks
     candidate_eval_work_ms   aggregate candidate-evaluation (cost
                              scoring) time, a subset of node search
     node_search_work_ms      aggregate per-node search time across all
                              slots (includes candidate eval and any
                              lock waits inside the search)
     other_ms                 jobs * wall - node search - barrier wait:
                              domain spawn/join overhead, the serial
                              prepare/merge phases and pool idle time

   plus p50/p99 candidate-evaluation latency.  Results are written to
   BENCH_profile.json; EXPERIMENTS.md reads the breakdown against the
   parallel-speedup numbers of BENCH_dse.json. *)

open Hida_ir
open Hida_estimator
open Hida_core
open Hida_frontend

type spec = {
  w_name : string;
  w_path : [ `Nn | `Memref ];
  w_build : unit -> Ir.op;
}

let nn_spec (e : Models.entry) =
  {
    w_name = e.Models.e_name;
    w_path = `Nn;
    w_build = (fun () -> snd (e.Models.e_build ()));
  }

let memref_spec (e : Polybench.entry) =
  {
    w_name = e.Polybench.e_name;
    w_path = `Memref;
    w_build = (fun () -> snd (e.Polybench.e_build ()));
  }

(* Pipeline prefix up to the parallelization pass (mirrors [Driver]). *)
let prep spec =
  let f = spec.w_build () in
  Hida_dialects.Canonicalize.run f;
  Construct.run f;
  Fusion.run f;
  (match spec.w_path with
  | `Memref -> Lowering.lower_memref_func f
  | `Nn -> ignore (Lowering.lower_nn_func f));
  Multi_producer.run f;
  Balance.run f;
  f

(* Search-dominated setting, matching the DSE bench. *)
let max_pf = 256

type run_row = {
  p_jobs : int;
  p_wall_ms : float;
  p_lock_wait_ms : float;
  p_lock_acquires : int;
  p_lock_blocked : int;
  p_barrier_wait_ms : float;
  p_candidate_eval_ms : float;
  p_node_search_ms : float;
  p_other_ms : float;
  p_eval_p50_ns : int;
  p_eval_p99_ns : int;
  p_eval_count : int;
  p_hits : int;
  p_misses : int;
  p_utilization : float; (* busy / (wall * slots) over parallel levels *)
  p_pool_tasks : int;
  p_pool_steals : int;
}

let ms_of_ns ns = float_of_int ns /. 1e6

let profile_run ~jobs spec =
  let cache = Qor_cache.global () in
  let f = prep spec in
  (* Start every measured run from a clean slate: [clear] drops the memo
     tables and counters, and [reset_stats] detaches the per-domain DLS
     contention records.  The pool's worker domains persist across runs,
     so without the explicit reset their DLS records would carry lock
     counts from the previous workload/jobs sweep into this row. *)
  Qor_cache.clear cache;
  Qor_cache.reset_stats cache;
  let pool0 = Domain_pool.stats () in
  let scope = Hida_obs.Scope.create () in
  let t0 = Unix.gettimeofday () in
  Hida_obs.Scope.with_scope scope (fun () ->
      ignore (Parallelize.run ~jobs ~max_parallel_factor:max_pf f));
  let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let m = Hida_obs.Scope.metrics scope in
  let c name = Hida_obs.Metrics.counter m name in
  let cont = Qor_cache.contention cache in
  let hits, misses = Qor_cache.counters cache in
  let node_search_ms = ms_of_ns (c "dse.node_search_total_ns") in
  let barrier_ms = ms_of_ns (c "dse.barrier_wait_total_ns") in
  let eval_p50, eval_p99, eval_count =
    match Hida_obs.Metrics.histogram m "dse.candidate_eval_ns" with
    | Some h ->
        ( Hida_obs.Histogram.percentile h 50.,
          Hida_obs.Histogram.percentile h 99.,
          Hida_obs.Histogram.count h )
    | None -> (0, 0, 0)
  in
  let busy = c "parallelize.pool.busy_ns"
  and slot_ns = c "parallelize.pool.slots_ns" in
  let pool1 = Domain_pool.stats () in
  {
    p_jobs = jobs;
    p_wall_ms = wall_ms;
    p_lock_wait_ms = ms_of_ns cont.Qor_cache.lc_wait_ns;
    p_lock_acquires = cont.Qor_cache.lc_acquires;
    p_lock_blocked = cont.Qor_cache.lc_blocked;
    p_barrier_wait_ms = barrier_ms;
    p_candidate_eval_ms = ms_of_ns (c "dse.candidate_eval_total_ns");
    p_node_search_ms = node_search_ms;
    p_other_ms =
      Float.max 0.
        ((float_of_int jobs *. wall_ms) -. node_search_ms -. barrier_ms);
    p_eval_p50_ns = eval_p50;
    p_eval_p99_ns = eval_p99;
    p_eval_count = eval_count;
    p_hits = hits;
    p_misses = misses;
    p_utilization =
      (if slot_ns > 0 then float_of_int busy /. float_of_int slot_ns else 1.);
    p_pool_tasks = pool1.Domain_pool.st_tasks - pool0.Domain_pool.st_tasks;
    p_pool_steals = pool1.Domain_pool.st_steals - pool0.Domain_pool.st_steals;
  }

let json_of ~jobs_swept rows_by_workload =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("  " ^ Util.host_provenance_json () ^ ",\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"max_parallel_factor\": %d,\n" max_pf);
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs_swept\": [%s],\n"
       (String.concat ", " (List.map string_of_int jobs_swept)));
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i (name, rows) ->
      Buffer.add_string buf (Printf.sprintf "    {\"name\": %S, \"runs\": [\n" name);
      List.iteri
        (fun j (r : run_row) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      {\"jobs\": %d, \"wall_ms\": %.3f, \
                \"qor_cache_lock_wait_ms\": %.3f, \"lock_acquires\": %d, \
                \"lock_blocked\": %d, \"level_barrier_wait_ms\": %.3f, \
                \"candidate_eval_work_ms\": %.3f, \"node_search_work_ms\": \
                %.3f, \"other_ms\": %.3f, \"candidate_eval_p50_ns\": %d, \
                \"candidate_eval_p99_ns\": %d, \"candidate_evals\": %d, \
                \"cache_hits\": %d, \"cache_misses\": %d, \
                \"pool_utilization\": %.3f, \"pool_tasks\": %d, \
                \"pool_steals\": %d}%s\n"
               r.p_jobs r.p_wall_ms r.p_lock_wait_ms r.p_lock_acquires
               r.p_lock_blocked r.p_barrier_wait_ms r.p_candidate_eval_ms
               r.p_node_search_ms r.p_other_ms r.p_eval_p50_ns r.p_eval_p99_ns
               r.p_eval_count r.p_hits r.p_misses r.p_utilization
               r.p_pool_tasks r.p_pool_steals
               (if j = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string buf
        (Printf.sprintf "    ]}%s\n"
           (if i = List.length rows_by_workload - 1 then "" else ","));
      ())
    rows_by_workload;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run ?(smoke = false) ?quick () =
  ignore quick;
  Util.header
    (if smoke then "Profiling benchmark (smoke: one workload)"
     else "Profiling benchmark: parallel-DSE wall-time decomposition");
  let jobs_swept = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let specs =
    if smoke then [ memref_spec (Polybench.by_name "3mm") ]
    else
      List.map (fun n -> nn_spec (Models.by_name n))
        [ "lenet"; "mobilenet"; "resnet18" ]
  in
  Qor_cache.install (Qor_cache.global ());
  Printf.printf "%-12s %5s %9s %10s %12s %10s %10s %8s\n" "workload" "jobs"
    "wall ms" "lock ms" "barrier ms" "search ms" "other ms" "util";
  let rows_by_workload =
    List.map
      (fun spec ->
        let rows =
          List.map
            (fun jobs ->
              let r = profile_run ~jobs spec in
              Printf.printf "%-12s %5d %9.2f %10.3f %12.2f %10.2f %10.2f %7.1f%%\n"
                spec.w_name r.p_jobs r.p_wall_ms r.p_lock_wait_ms
                r.p_barrier_wait_ms r.p_node_search_ms r.p_other_ms
                (100. *. r.p_utilization);
              r)
            jobs_swept
        in
        (spec.w_name, rows))
      specs
  in
  let json = json_of ~jobs_swept rows_by_workload in
  let oc = open_out "BENCH_profile.json" in
  output_string oc json;
  close_out oc;
  print_endline "\nwritten to BENCH_profile.json"
