(* Table 7: C++ kernel evaluation on the ZU3EG — HIDA vs ScaleHLS vs SOFF
   (ported constants) vs Vitis HLS. *)

open Hida_ir
open Hida_estimator
open Hida_core
open Hida_frontend
open Hida_baselines

(* Paper reference throughputs (samples/s), for shape comparison. *)
let paper : (string * (float * float option * float option * float)) list =
  (* kernel, (HIDA, ScaleHLS, SOFF, Vitis) *)
  [
    ("2mm", (239.22, Some 122.39, Some 30.67, 1.23));
    ("3mm", (175.43, Some 92.33, None, 1.04));
    ("atax", (1021.39, Some 932.26, Some 2173.17, 103.18));
    ("bicg", (2869.69, Some 2869.61, Some 2295.75, 104.19));
    ("correlation", (67.33, Some 59.77, Some 3.96, 1.32));
    ("gesummv", (31685.68, Some 31685.68, Some 3466.70, 266.65));
    ("jacobi-2d", (257.27, Some 128.63, None, 2.71));
    ("mvt", (9979.04, Some 4989.02, Some 870.01, 62.13));
    ("seidel-2d", (0.14, Some 0.14, None, 0.11));
    ("symm", (2.62, Some 2.62, None, 2.02));
    ("syr2k", (27.68, Some 27.67, None, 1.44));
  ]

type row = {
  name : string;
  compile_s : float;
  stages : string;
  luts : int;
  ffs : int;
  dsps : int;
  hida : float;
  scalehls : float;
  soff : float option;
  vitis : float;
}

let run_kernel (e : Polybench.entry) =
  let build () = e.Polybench.e_build () in
  let hida = Driver.fit ~device:Device.zu3eg ~path:`Memref build in
  let sh = Scalehls.run_memref ~device:Device.zu3eg build in
  let _m, fv = build () in
  let vitis, _ = Vitis.run ~device:Device.zu3eg fv in
  {
    name = e.Polybench.e_name;
    compile_s = hida.Driver.compile_seconds;
    stages = Util.top_stages hida;
    luts = hida.Driver.estimate.Qor.d_resource.Resource.luts;
    ffs = hida.Driver.estimate.Qor.d_resource.Resource.ffs;
    dsps = hida.Driver.estimate.Qor.d_resource.Resource.dsps;
    hida = hida.Driver.estimate.Qor.d_throughput;
    scalehls = sh.Driver.estimate.Qor.d_throughput;
    soff = Soff.throughput e.Polybench.e_name;
    vitis = vitis.Qor.d_throughput;
  }

let run () =
  Util.header "Table 7: C++ kernels on ZU3EG (throughput in samples/s)";
  Printf.printf "%-12s %8s %8s %8s %6s %12s %12s %10s %12s\n" "Kernel" "Comp(s)"
    "LUT" "FF" "DSP" "HIDA" "ScaleHLS" "SOFF" "Vitis";
  let rows = List.map run_kernel Polybench.all in
  let ratios_sh = ref [] and ratios_soff = ref [] and ratios_vitis = ref [] in
  List.iter
    (fun r ->
      ratios_sh := (r.hida /. r.scalehls) :: !ratios_sh;
      (match r.soff with
      | Some s -> ratios_soff := (r.hida /. s) :: !ratios_soff
      | None -> ());
      ratios_vitis := (r.hida /. r.vitis) :: !ratios_vitis;
      Printf.printf "%-12s %8.2f %8d %8d %6d %12.2f %12s %10s %12s\n" r.name
        r.compile_s r.luts r.ffs r.dsps r.hida
        (Printf.sprintf "%.2f (%.2fx)" r.scalehls (r.hida /. r.scalehls))
        (match r.soff with
        | Some s -> Printf.sprintf "%.1f" s
        | None -> "-")
        (Printf.sprintf "%.2f (%.1fx)" r.vitis (r.hida /. r.vitis)))
    rows;
  Printf.printf
    "\nGeo-mean improvement of HIDA: %.2fx over ScaleHLS, %.2fx over SOFF, %.2fx over Vitis\n"
    (Util.geomean !ratios_sh) (Util.geomean !ratios_soff)
    (Util.geomean !ratios_vitis);
  Printf.printf "Paper geo-means: 1.29x over ScaleHLS, 4.49x over SOFF, 31.08x over Vitis\n";
  Util.subheader "Per-stage compile-time breakdown (top 3 stages)";
  List.iter (fun r -> Printf.printf "%-12s %s\n" r.name r.stages) rows;
  Util.subheader "Shape check vs paper (HIDA/ScaleHLS ratios per kernel)";
  Printf.printf "%-12s %10s %10s\n" "Kernel" "paper" "measured";
  List.iter
    (fun r ->
      match List.assoc_opt r.name paper with
      | Some (ph, Some psh, _, _) ->
          Printf.printf "%-12s %9.2fx %9.2fx\n" r.name (ph /. psh)
            (r.hida /. r.scalehls)
      | _ -> ())
    rows;
  rows

let rows = lazy (run ())
