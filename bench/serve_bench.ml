(* Serve benchmark: client-observed latency against a live hida-serve
   instance, cold vs warm-hit vs coalesced.

   The server runs in a domain of this process (same code path as the
   [hida-serve] binary: socket, worker pool, artifact store); clients
   are separate domains each opening its own connection, so every
   number below includes the full connect/frame/parse round trip.

   Per workload:

     cold       first compile of the key — a full pipeline run
     warm       the same request again — answered from the
                content-addressed artifact store
     coalesced  [clients] identical concurrent requests for a key the
                store has not seen; the leader runs the pipeline once
                and the followers attach to it

   Each served cold artifact is also compared byte-for-byte against an
   in-process [Artifact.compile] of the same request.  Results land in
   BENCH_serve.json. *)

open Hida_serve

type spec = { w_name : string; w_path : string }

let nn n = { w_name = n; w_path = "nn" }
let kernel n = { w_name = n; w_path = "memref" }

let opts_cold =
  { Protocol.default_opts with Protocol.co_pf = 32; co_tile = 32 }

(* A second options point with a distinct artifact key, so the coalesce
   round always starts from a store miss. *)
let opts_fresh =
  { Protocol.default_opts with Protocol.co_pf = 16; co_tile = 16 }

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (1000. *. (Unix.gettimeofday () -. t0), r)

let compile_exn ~socket src opts =
  match Client.compile ~socket src opts with
  | Ok r -> r
  | Error e -> failwith ("serve bench: " ^ e)

type row = {
  b_name : string;
  b_path : string;
  b_cold_ms : float;
  b_warm_ms : float;
  b_coalesced_ms : float;  (** mean over the coalesced replies; nan if none *)
  b_coalesced : int;  (** replies that attached to the in-flight compile *)
  b_clients : int;
  b_identical : bool;
}

let bench_workload ~socket ~clients spec =
  let src = Protocol.Zoo spec.w_name in
  let cold_ms, cold = time_ms (fun () -> compile_exn ~socket src opts_cold) in
  assert (not cold.Protocol.cr_cached);
  (* Warm: best of 3 — the numbers are microseconds, so one scheduler
     hiccup would otherwise dominate. *)
  let warm_ms =
    List.fold_left min infinity
      (List.init 3 (fun _ ->
           let ms, warm = time_ms (fun () -> compile_exn ~socket src opts_cold) in
           assert warm.Protocol.cr_cached;
           ms))
  in
  (* Coalesced: concurrent identical requests for an unseen key. *)
  let results =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            time_ms (fun () -> compile_exn ~socket src opts_fresh)))
    |> List.map Domain.join
  in
  let coalesced = List.filter (fun (_, r) -> r.Protocol.cr_coalesced) results in
  let coalesced_ms =
    match coalesced with
    | [] -> nan
    | l ->
        List.fold_left (fun acc (ms, _) -> acc +. ms) 0. l
        /. float_of_int (List.length l)
  in
  (* Served artifact vs a local pipeline run of the same request. *)
  let identical =
    match Artifact.compile src opts_cold with
    | Ok a -> a.Artifact.a_ir = cold.Protocol.cr_ir
    | Error _ -> false
  in
  {
    b_name = spec.w_name;
    b_path = spec.w_path;
    b_cold_ms = cold_ms;
    b_warm_ms = warm_ms;
    b_coalesced_ms = coalesced_ms;
    b_coalesced = List.length coalesced;
    b_clients = clients;
    b_identical = identical;
  }

let json_of_rows ~workers ~clients rows =
  let buf = Buffer.create 4096 in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("  " ^ Util.host_provenance_json () ^ ",\n");
  Buffer.add_string buf (Printf.sprintf "  \"workers\": %d,\n" workers);
  Buffer.add_string buf (Printf.sprintf "  \"clients\": %d,\n" clients);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"path\": %S, \"cold_ms\": %.3f, \"warm_ms\": \
            %.3f, \"warm_speedup\": %.2f, \"coalesced_ms\": %s, \
            \"coalesced_replies\": %d, \"clients\": %d, \"byte_identical\": \
            %b}%s\n"
           r.b_name r.b_path r.b_cold_ms r.b_warm_ms
           (r.b_cold_ms /. r.b_warm_ms)
           (num r.b_coalesced_ms) r.b_coalesced r.b_clients r.b_identical
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  let speedups = List.map (fun r -> r.b_cold_ms /. r.b_warm_ms) rows in
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_warm_speedup\": %.2f,\n" (Util.geomean speedups));
  Buffer.add_string buf
    (Printf.sprintf "  \"min_warm_speedup\": %.2f,\n"
       (List.fold_left min infinity speedups));
  Buffer.add_string buf
    (Printf.sprintf "  \"all_byte_identical\": %b\n"
       (List.for_all (fun r -> r.b_identical) rows));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run ?(smoke = false) ?(quick = false) () =
  Util.header
    (if smoke then "Serve benchmark (smoke: one workload)"
     else "Serve benchmark: cold / warm-hit / coalesced client latency");
  let socket = Printf.sprintf "/tmp/hida-serve-bench-%d.sock" (Unix.getpid ()) in
  let workers = max 2 (min 4 (Domain.recommended_domain_count () - 1)) in
  let clients = if smoke then 2 else 4 in
  let specs =
    if smoke then [ kernel "atax" ]
    else if quick then
      [ kernel "2mm"; kernel "atax"; nn "lenet"; nn "mobilenet"; nn "resnet18" ]
    else
      [
        kernel "2mm"; kernel "3mm"; kernel "atax"; kernel "bicg"; kernel "gemm";
        nn "lenet"; nn "mobilenet"; nn "resnet18"; nn "vgg16";
      ]
  in
  let config =
    {
      Server.default_config with
      Server.cf_socket = socket;
      cf_workers = workers;
      cf_verbose = false;
    }
  in
  let server = Domain.spawn (fun () -> Server.run config) in
  (* Wait for the socket to answer. *)
  let rec await n =
    if n = 0 then failwith "serve bench: server did not come up"
    else
      match Client.ping ~socket with
      | Ok () -> ()
      | Error _ ->
          Unix.sleepf 0.05;
          await (n - 1)
  in
  await 100;
  let finish () =
    (match Client.stop ~socket with Ok () -> () | Error _ -> ());
    Domain.join server
  in
  Fun.protect ~finally:finish (fun () ->
      Printf.printf "%-12s %-7s %10s %10s %8s %12s %10s %6s\n" "workload"
        "path" "cold ms" "warm ms" "warm x" "coalesce ms" "coalesced" "ident";
      let rows =
        List.map
          (fun spec ->
            let r = bench_workload ~socket ~clients spec in
            Printf.printf "%-12s %-7s %10.2f %10.3f %8.1f %12s %6d/%-3d %6b\n"
              r.b_name r.b_path r.b_cold_ms r.b_warm_ms
              (r.b_cold_ms /. r.b_warm_ms)
              (if Float.is_nan r.b_coalesced_ms then "-"
               else Printf.sprintf "%.2f" r.b_coalesced_ms)
              r.b_coalesced r.b_clients r.b_identical;
            r)
          specs
      in
      let json = json_of_rows ~workers ~clients rows in
      let oc = open_out "BENCH_serve.json" in
      output_string oc json;
      close_out oc;
      let speedups = List.map (fun r -> r.b_cold_ms /. r.b_warm_ms) rows in
      Printf.printf
        "\nwarm-hit speedup: geomean %.0fx, min %.0fx; artifacts byte-identical \
         to local compiles: %b — written to BENCH_serve.json\n"
        (Util.geomean speedups)
        (List.fold_left min infinity speedups)
        (List.for_all (fun r -> r.b_identical) rows))
