(* Static-checker gate over the whole workload zoo.

   Compiles every PolyBench kernel and model through the standard
   pipeline with [Driver.options.analyze] set and prints the final-gate
   diagnostics.  A correct pipeline produces zero diagnostics on every
   workload (the §6.4.2 imbalances present after lowering must all be
   repaired by balancing); any line here is a compiler bug. *)

open Hida_estimator
open Hida_core
open Hida_frontend

let opts = { Driver.default with analyze = true }

let check_one name (report : Driver.report) =
  match report.Driver.analysis with
  | [] ->
      Printf.printf "  %-14s clean\n" name;
      0
  | ds ->
      Printf.printf "  %-14s %d diagnostic(s)\n" name (List.length ds);
      List.iter
        (fun d ->
          Printf.printf "    %s\n" (Hida_analysis.Analysis.to_string d))
        ds;
      List.length ds

let run ~quick () =
  Util.header "Static dataflow analysis gate (hida.analysis)";
  let total = ref 0 in
  Printf.printf "C++ kernels (zu3eg):\n";
  List.iter
    (fun e ->
      let _m, f = e.Polybench.e_build () in
      total :=
        !total
        + check_one e.Polybench.e_name
            (Driver.run_memref ~opts ~device:Device.zu3eg f))
    Polybench.all;
  List.iter
    (fun e ->
      let _m, f = e.Polybench_extra.e_build () in
      total :=
        !total
        + check_one e.Polybench_extra.e_name
            (Driver.run_memref ~opts ~device:Device.zu3eg f))
    Polybench_extra.all;
  Printf.printf "Models (vu9p, scaled):\n";
  let models =
    if quick then [ "lenet"; "mlp"; "resnet18" ]
    else List.map (fun e -> e.Models.e_name) Models.all
  in
  List.iter
    (fun name ->
      let e = Models.by_name name in
      let _m, f = e.Models.e_build ~scale:0.25 () in
      total :=
        !total + check_one name (Driver.run_nn ~opts ~device:Device.vu9p_slr f))
    models;
  if !total = 0 then Printf.printf "all workloads clean\n"
  else begin
    Printf.printf "%d diagnostic(s) total — pipeline bug\n" !total;
    exit 1
  end
