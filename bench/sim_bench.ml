(* Simulator-throughput benchmark: the dense reference core vs the
   compiled-step core at sustained frame counts, plus a
   replicated-accelerator serving scenario.

   Per workload (nn zoo on the VU9P SLR, PolyBench kernels on the
   ZU3EG; each compiled once through the full pipeline, then the
   schedule's simulator graph extracted):

     dense     Sim.run_dense — hashtable edge walks, O(nodes x frames)
               matrices, always traced (the pre-compiled-step core)
     compiled  Sim.run with tracing off — flattened edges + ring
               buffers, O(nodes x depth) memory

   both at [frames] frames, reported as simulated frames per wall
   second (min over reps).  Every workload's compiled-step results are
   checked identical to the dense core's (totals, steady interval,
   first-frame latency, busy fractions, inter-frame histogram, and the
   full trace at a traced frame count).

   The replica scenario instantiates N copies of one schedule behind a
   shared batch arrival stream arriving faster than a single replica
   drains, and reports aggregate frames/kilocycle plus p50/p99 sojourn
   latency — the sustained-serving shape of the ROADMAP item.  Results
   land in BENCH_sim.json. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_estimator
open Hida_core
open Hida_frontend
open Hida_hlssim

type spec = { w_name : string; w_path : string }

let nn n = { w_name = n; w_path = "nn" }
let kernel n = { w_name = n; w_path = "memref" }

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Compile the workload and extract the simulator graph of its dataflow
   schedule.  A modest parallel factor keeps the (untimed) compile
   cheap; the simulated graph shape is what the bench exercises. *)
let graph_of spec =
  let opts = { Driver.default with Driver.max_parallel_factor = 4 } in
  let device, f =
    match spec.w_path with
    | "nn" ->
        let _m, f = (Models.by_name spec.w_name).Models.e_build () in
        ignore (Driver.run_nn ~opts ~device:Device.vu9p_slr f);
        (Device.vu9p_slr, f)
    | _ ->
        let _m, f = (Polybench.by_name spec.w_name).Polybench.e_build () in
        ignore (Driver.run_memref ~opts ~device:Device.zu3eg f);
        (Device.zu3eg, f)
  in
  match Walk.collect f ~pred:Hida_d.is_schedule with
  | sched :: _ -> Some (Sim_ir.of_schedule device sched)
  | [] -> None

let hist_equal a b =
  Hida_obs.Histogram.count a = Hida_obs.Histogram.count b
  && Hida_obs.Histogram.sum a = Hida_obs.Histogram.sum b
  && Hida_obs.Histogram.max_value a = Hida_obs.Histogram.max_value b
  && Hida_obs.Histogram.min_value a = Hida_obs.Histogram.min_value b
  && Hida_obs.Histogram.buckets a = Hida_obs.Histogram.buckets b

(* Dense and compiled cores must agree bit for bit: summary results at
   the sustained frame count, and full traces at a traced one. *)
let cores_identical ~frames nodes buffers =
  let d = Sim.run_dense ~frames nodes buffers in
  let c = Sim.run ~frames ~trace:false nodes buffers in
  let summary_ok =
    d.Sim.r_total_cycles = c.Sim.r_total_cycles
    && d.Sim.r_steady_interval = c.Sim.r_steady_interval
    && d.Sim.r_first_frame_latency = c.Sim.r_first_frame_latency
    && d.Sim.r_node_busy = c.Sim.r_node_busy
    && hist_equal d.Sim.r_interframe c.Sim.r_interframe
  in
  let dt = Sim.run_dense ~frames:64 nodes buffers in
  let ct = Sim.run ~frames:64 ~trace:true nodes buffers in
  summary_ok && dt.Sim.r_trace = ct.Sim.r_trace

type row = {
  b_name : string;
  b_path : string;
  b_nodes : int;
  b_dense_fps : float;
  b_compiled_fps : float;
  b_identical : bool;
  b_p50 : int;
  b_p90 : int;
  b_p99 : int;
}

let bench_workload ~frames ~reps spec =
  match graph_of spec with
  | None -> None
  | Some (nodes, buffers) ->
      let best f =
        List.fold_left min infinity (List.init reps (fun _ -> fst (time_s f)))
      in
      let dense_s = best (fun () -> ignore (Sim.run_dense ~frames nodes buffers)) in
      (* The compiled-step time includes [Sim.compile] every rep: the
         honest cold-call comparison. *)
      let compiled_s =
        best (fun () -> ignore (Sim.run ~frames ~trace:false nodes buffers))
      in
      let r = Sim.run ~frames ~trace:false nodes buffers in
      let h = r.Sim.r_interframe in
      Some
        {
          b_name = spec.w_name;
          b_path = spec.w_path;
          b_nodes = List.length nodes;
          b_dense_fps = float_of_int frames /. dense_s;
          b_compiled_fps = float_of_int frames /. compiled_s;
          b_identical = cores_identical ~frames nodes buffers;
          b_p50 = Hida_obs.Histogram.percentile h 50.;
          b_p90 = Hida_obs.Histogram.percentile h 90.;
          b_p99 = Hida_obs.Histogram.percentile h 99.;
        }

type replica_row = {
  p_replicas : int;
  p_fpk : float;
  p_p50 : int;
  p_p99 : int;
  p_total : int;
}

(* Replica scaling: a stream arriving 4x faster than one replica drains
   saturates 1-2 replicas (throughput-bound) and is drained by 4+
   (arrival-bound, sojourn collapses to the pipeline latency). *)
let bench_replicas ~frames spec =
  match graph_of spec with
  | None -> ([], 0)
  | Some (nodes, buffers) ->
      let c = Sim.compile nodes buffers in
      let single = Sim.run_compiled ~frames:256 ~trace:false c in
      let interval =
        max 1 (int_of_float single.Sim.r_steady_interval / 4)
      in
      ( List.map
          (fun replicas ->
            let rep =
              Sim_farm.simulate ~replicas ~frames ~arrival_interval:interval c
            in
            {
              p_replicas = replicas;
              p_fpk = rep.Sim_farm.fr_frames_per_kcycle;
              p_p50 = Hida_obs.Histogram.percentile rep.Sim_farm.fr_latency 50.;
              p_p99 = Hida_obs.Histogram.percentile rep.Sim_farm.fr_latency 99.;
              p_total = rep.Sim_farm.fr_total_cycles;
            })
          [ 1; 2; 4; 8 ],
        interval )

let run ?(smoke = false) ?(quick = false) () =
  ignore quick;
  Util.header
    (if smoke then "Simulator throughput (smoke: reduced zoo and frames)"
     else "Simulator throughput: dense core vs compiled-step core");
  let frames = if smoke then 256 else 2048 in
  let reps = if smoke then 1 else 3 in
  let nn_zoo =
    if smoke then [ nn "lenet" ]
    else List.map (fun (e : Models.entry) -> nn e.Models.e_name) Models.all
  in
  let kernel_zoo =
    if smoke then [ kernel "2mm" ]
    else
      List.filter_map
        (fun (e : Polybench.entry) ->
          if e.Polybench.e_multi_loop then Some (kernel e.Polybench.e_name)
          else None)
        Polybench.all
  in
  let rows =
    List.filter_map (bench_workload ~frames ~reps) (nn_zoo @ kernel_zoo)
  in
  Printf.printf "%-14s %-7s %6s %14s %14s %8s %6s %8s %8s\n" "workload" "path"
    "nodes" "dense f/s" "compiled f/s" "speedup" "ident" "gap p50" "gap p99";
  List.iter
    (fun r ->
      Printf.printf "%-14s %-7s %6d %14.0f %14.0f %7.2fx %6b %8d %8d\n"
        r.b_name r.b_path r.b_nodes r.b_dense_fps r.b_compiled_fps
        (r.b_compiled_fps /. r.b_dense_fps)
        r.b_identical r.b_p50 r.b_p99)
    rows;
  let speedups path =
    List.filter_map
      (fun r ->
        if path = "" || r.b_path = path then
          Some (r.b_compiled_fps /. r.b_dense_fps)
        else None)
      rows
  in
  let geo_all = Util.geomean (speedups "") in
  let geo_nn = Util.geomean (speedups "nn") in
  Printf.printf "geomean speedup: %.2fx (nn zoo %.2fx) at %d frames\n" geo_all
    geo_nn frames;
  let all_identical = List.for_all (fun r -> r.b_identical) rows in
  if not all_identical then
    failwith "sim bench: compiled-step core diverged from the dense core";
  let replica_workload = if smoke then "lenet" else "resnet18" in
  let replica_frames = if smoke then 128 else 2048 in
  let replica_rows, arrival_interval =
    bench_replicas ~frames:replica_frames (nn replica_workload)
  in
  Util.subheader
    (Printf.sprintf
       "Replica scaling: %s, %d frames arriving every %d cycles"
       replica_workload replica_frames arrival_interval);
  Printf.printf "%-9s %16s %14s %14s %14s\n" "replicas" "frames/kcycle"
    "sojourn p50" "sojourn p99" "total cycles";
  List.iter
    (fun p ->
      Printf.printf "%-9d %16.6f %14d %14d %14d\n" p.p_replicas p.p_fpk p.p_p50
        p.p_p99 p.p_total)
    replica_rows;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("  " ^ Util.host_provenance_json () ^ ",\n");
  Buffer.add_string buf (Printf.sprintf "  \"frames\": %d,\n" frames);
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"path\": %S, \"nodes\": %d, \"dense_fps\": \
            %.1f, \"compiled_fps\": %.1f, \"speedup\": %.2f, \"identical\": \
            %b, \"interframe_p50\": %d, \"interframe_p90\": %d, \
            \"interframe_p99\": %d}%s\n"
           r.b_name r.b_path r.b_nodes r.b_dense_fps r.b_compiled_fps
           (r.b_compiled_fps /. r.b_dense_fps)
           r.b_identical r.b_p50 r.b_p90 r.b_p99
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_speedup\": %.2f,\n" geo_all);
  Buffer.add_string buf
    (Printf.sprintf "  \"geomean_speedup_nn\": %.2f,\n" geo_nn);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_identical\": %b,\n" all_identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"replica_workload\": %S,\n" replica_workload);
  Buffer.add_string buf
    (Printf.sprintf "  \"replica_frames\": %d,\n" replica_frames);
  Buffer.add_string buf
    (Printf.sprintf "  \"replica_arrival_interval\": %d,\n" arrival_interval);
  Buffer.add_string buf "  \"replicas\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"replicas\": %d, \"frames_per_kcycle\": %.6f, \
            \"latency_p50\": %d, \"latency_p99\": %d, \"total_cycles\": %d}%s\n"
           p.p_replicas p.p_fpk p.p_p50 p.p_p99 p.p_total
           (if i = List.length replica_rows - 1 then "" else ",")))
    replica_rows;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "\ncompiled-step %.2fx geomean (%d frames, %d workloads) — written to \
     BENCH_sim.json\n"
    geo_all frames (List.length rows)
