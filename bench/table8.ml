(* Table 8: PyTorch model evaluation on one SLR of a VU9P — HIDA vs
   DNNBuilder (analytic RTL model) vs ScaleHLS, with DSP efficiency. *)

open Hida_ir
open Hida_estimator
open Hida_core
open Hida_frontend
open Hida_baselines

(* Paper reference values: (HIDA thr, DNNBuilder thr, ScaleHLS thr,
   HIDA eff, DNNB eff, ScaleHLS eff). *)
let paper =
  [
    ("resnet18", (45.4, None, Some 3.3, 0.738, None, Some 0.052));
    ("mobilenet", (137.4, None, Some 15.4, 0.755, None, Some 0.096));
    ("zfnet", (90.4, Some 112.2, None, 0.828, Some 0.797, None));
    ("vgg16", (48.3, Some 27.7, Some 6.9, 1.021, Some 0.962, Some 0.186));
    ("yolo", (33.7, Some 22.1, None, 0.943, Some 0.860, None));
    ("mlp", (938.9, None, Some 152.6, 0.900, None, Some 0.176));
  ]

type row = {
  name : string;
  compile_s : float;
  stages : string;
  luts : int;
  dsps : int;
  bram : int;
  hida : float;
  hida_eff : float;
  dnnb : (float * float) option; (* throughput, efficiency *)
  scalehls : (float * float * int) option; (* throughput, efficiency, bram *)
}

let models = [ "resnet18"; "mobilenet"; "zfnet"; "vgg16"; "yolo"; "mlp" ]

let run_model name =
  let e = Models.by_name name in
  let build () = e.Models.e_build () in
  let hida = Driver.fit ~device:Device.vu9p_slr ~path:`Nn build in
  let _m, probe = build () in
  let dnnb =
    if Dnnbuilder.supports probe then begin
      let r = Dnnbuilder.run ~device:Device.vu9p_slr probe in
      Some (r.Dnnbuilder.throughput, r.Dnnbuilder.dsp_efficiency)
    end
    else None
  in
  let scalehls =
    if Scalehls.supports probe then begin
      let r = Scalehls.run_nn ~device:Device.vu9p_slr build in
      Some
        ( r.Driver.estimate.Qor.d_throughput,
          r.Driver.estimate.Qor.d_dsp_efficiency,
          r.Driver.estimate.Qor.d_resource.Resource.bram18 )
    end
    else None
  in
  {
    name;
    compile_s = hida.Driver.compile_seconds;
    stages = Util.top_stages hida;
    luts = hida.Driver.estimate.Qor.d_resource.Resource.luts;
    dsps = hida.Driver.estimate.Qor.d_resource.Resource.dsps;
    bram = hida.Driver.estimate.Qor.d_resource.Resource.bram18;
    hida = hida.Driver.estimate.Qor.d_throughput;
    hida_eff = hida.Driver.estimate.Qor.d_dsp_efficiency;
    dnnb;
    scalehls;
  }

let run () =
  Util.header "Table 8: PyTorch models on one VU9P SLR (throughput in samples/s)";
  Printf.printf "%-10s %8s %8s %6s %6s %10s %14s %14s %8s %8s %8s\n" "Model"
    "Comp(s)" "LUT" "DSP" "BRAM" "HIDA" "DNNBuilder" "ScaleHLS" "EffHIDA"
    "EffDNNB" "EffSH";
  let rows = List.map run_model models in
  let r_dnnb = ref [] and r_sh = ref [] and e_dnnb = ref [] and e_sh = ref [] in
  List.iter
    (fun r ->
      (match r.dnnb with
      | Some (t, e) ->
          r_dnnb := (r.hida /. t) :: !r_dnnb;
          e_dnnb := (r.hida_eff /. e) :: !e_dnnb
      | None -> ());
      (match r.scalehls with
      | Some (t, e, _) ->
          r_sh := (r.hida /. t) :: !r_sh;
          e_sh := (r.hida_eff /. max 1e-6 e) :: !e_sh
      | None -> ());
      Printf.printf "%-10s %8.2f %8d %6d %6d %10.2f %14s %14s %7.1f%% %8s %8s\n"
        r.name r.compile_s r.luts r.dsps r.bram r.hida
        (match r.dnnb with
        | Some (t, _) -> Printf.sprintf "%.2f (%.2fx)" t (r.hida /. t)
        | None -> "-")
        (match r.scalehls with
        | Some (t, _, _) -> Printf.sprintf "%.2f (%.2fx)" t (r.hida /. t)
        | None -> "-")
        (100. *. r.hida_eff)
        (match r.dnnb with
        | Some (_, e) -> Printf.sprintf "%.1f%%" (100. *. e)
        | None -> "-")
        (match r.scalehls with
        | Some (_, e, _) -> Printf.sprintf "%.1f%%" (100. *. e)
        | None -> "-"))
    rows;
  Util.subheader "Per-stage compile-time breakdown (top 3 stages)";
  List.iter (fun r -> Printf.printf "%-10s %s\n" r.name r.stages) rows;
  Printf.printf
    "\nGeo-mean throughput: %.2fx over DNNBuilder, %.2fx over ScaleHLS\n"
    (Util.geomean !r_dnnb) (Util.geomean !r_sh);
  Printf.printf "Geo-mean DSP efficiency: %.2fx over DNNBuilder, %.2fx over ScaleHLS\n"
    (Util.geomean !e_dnnb) (Util.geomean !e_sh);
  Printf.printf
    "Paper geo-means: 1.29x / 8.54x (throughput), 1.07x / 7.49x (efficiency)\n";
  Printf.printf
    "Capability matrix matches the paper: DNNBuilder rejects ResNet-18 (shortcuts),\n\
     MobileNet (depthwise) and MLP (no conv); ScaleHLS rejects ZFNet (irregular\n\
     sizes) and YOLO (high-resolution input).\n";
  rows

let rows = lazy (run ())
