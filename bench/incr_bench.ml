(* Incremental-recompilation benchmark: subtree-level structure sharing
   across compiles through the persistent content-addressed store.

   Scenarios (full-scale resnet18, end-to-end [Driver] pipeline):

     cold         no backing store (the in-process memo still runs, as
                  in any single compile)
     incremental  backing store populated by compiling the ORIGINAL
                  model; the timed run compiles an EDITED model (one
                  nn.relu removed) — every unchanged subtree reuses its
                  fused/balanced/DSE'd result via content hashes
     identical    backing store populated by the same model; the timed
                  run recompiles it unchanged (schedule replays +
                  whole-design estimate hit)

   The store is rebuilt from scratch before every timed incremental rep
   so each one measures the first recompile after the edit, not a
   warmed-up second one.  Output IR is asserted byte-identical to the
   cold compile for jobs in {1, 4}; repeated-block dedup counts
   (isomorphic nodes lowered once and stamped) are reported for the
   model zoo.  Results go to BENCH_incr.json. *)

open Hida_ir
open Ir
open Hida_estimator
open Hida_core
open Hida_frontend

(* A large parallel factor makes the compile search-dominated (the
   divisor lattice the DSE walks grows with the factor) — the regime
   incremental recompilation is for.  The default-effort ratio is
   reported alongside for transparency. *)
let thorough_pf = 512

let opts_of_pf pf = { Driver.default with Driver.max_parallel_factor = pf }

let edit_one_layer f =
  match Walk.find f ~pred:(fun o -> Op.name o = "nn.relu") with
  | None -> failwith "incr bench: model has no nn.relu layer"
  | Some relu ->
      let v = Op.operand relu 0 in
      List.iter
        (fun r -> replace_all_uses ~old_value:r ~new_value:v)
        (Op.results relu);
      erase_op relu

let compile_once ~opts ~edit name =
  let _m, f = (Models.by_name name).Models.e_build () in
  if edit then edit_one_layer f;
  let st = Driver.compile_nn ~opts f in
  let rep = Driver.finish ~device:Device.vu9p_slr st f in
  (rep, Printer.op_to_string rep.Driver.design)

(* min-of-n wall time, keeping the fastest rep's report and printed IR;
   [prep] re-establishes the cache scenario before every rep. *)
let best ~prep ~opts ~edit n name =
  let out = ref None in
  for _ = 1 to n do
    prep ();
    let rep, ir = compile_once ~opts ~edit name in
    match !out with
    | Some (r, _) when r.Driver.compile_seconds <= rep.Driver.compile_seconds
      ->
        ()
    | _ -> out := Some (rep, ir)
  done;
  Option.get !out

type row = {
  r_pf : int;
  r_cold_ms : float;
  r_incr_ms : float;
  r_ident_ms : float;
  r_hits : int;
  r_misses : int;
}

let bench_effort ~reps ~pf name =
  let g = Qor_cache.global () in
  let opts = opts_of_pf pf in
  let cold_prep () =
    Qor_cache.set_backing g None;
    Qor_cache.clear g
  in
  let rc, ir_cold = best ~prep:cold_prep ~opts ~edit:true reps name in
  (* Each incremental rep must see a store holding ONLY original-model
     entries: rebuild and repopulate it from scratch every time. *)
  let incr_prep () =
    Qor_cache.set_backing g (Some (Blob_store.create ()));
    Qor_cache.clear g;
    ignore (compile_once ~opts ~edit:false name);
    Qor_cache.clear g
  in
  incr_prep ();
  let h0, m0 = Qor_cache.subtree_counters g in
  ignore (compile_once ~opts ~edit:true name);
  let h1, m1 = Qor_cache.subtree_counters g in
  let ri, ir_incr = best ~prep:incr_prep ~opts ~edit:true reps name in
  let ident_prep () = Qor_cache.clear g in
  let rii, _ = best ~prep:ident_prep ~opts ~edit:false reps name in
  if ir_incr <> ir_cold then
    failwith
      (Printf.sprintf
         "incr bench: incremental %s output differs from cold compile" name);
  Qor_cache.set_backing g None;
  ( {
      r_pf = pf;
      r_cold_ms = 1000. *. rc.Driver.compile_seconds;
      r_incr_ms = 1000. *. ri.Driver.compile_seconds;
      r_ident_ms = 1000. *. rii.Driver.compile_seconds;
      r_hits = h1 - h0;
      r_misses = m1 - m0;
    },
    ir_cold )

(* Byte-identity of the incremental path across worker-domain counts:
   the store probes happen at points deterministic in the input, so the
   design must not depend on [jobs]. *)
let jobs_identity ~ir_cold name =
  let g = Qor_cache.global () in
  List.map
    (fun jobs ->
      Qor_cache.set_backing g (Some (Blob_store.create ()));
      Qor_cache.clear g;
      ignore
        (compile_once ~opts:(opts_of_pf thorough_pf) ~edit:false name);
      Qor_cache.clear g;
      let _, ir =
        compile_once
          ~opts:{ (opts_of_pf thorough_pf) with Driver.jobs }
          ~edit:true name
      in
      Qor_cache.set_backing g None;
      (jobs, ir = ir_cold))
    [ 1; 4 ]

(* Within-compile structure sharing: isomorphic nodes lowered once and
   stamped ([incr.subtree.stamped] from a plain cold compile). *)
let dedup_count name =
  let g = Qor_cache.global () in
  Qor_cache.set_backing g None;
  Qor_cache.clear g;
  let rep, _ = compile_once ~opts:Driver.default ~edit:false name in
  Hida_obs.Metrics.counter rep.Driver.metrics "incr.subtree.stamped"

let run ?(smoke = false) ?(quick = false) () =
  ignore quick;
  Util.header
    (if smoke then "Incremental recompilation (smoke: reduced reps)"
     else "Incremental recompilation: cold vs subtree-store reuse");
  let reps = if smoke then 2 else 5 in
  let name = "resnet18" in
  Qor_cache.install (Qor_cache.global ());
  Printf.printf "%-10s %10s %10s %10s %8s %8s\n" "effort" "cold ms" "incr ms"
    "ident ms" "incr x" "ident x";
  let rows_irs =
    List.map
      (fun pf -> bench_effort ~reps ~pf name)
      [ 32; thorough_pf ]
  in
  List.iter
    (fun (r, _) ->
      Printf.printf "pf=%-7d %10.2f %10.2f %10.2f %8.2f %8.2f\n" r.r_pf
        r.r_cold_ms r.r_incr_ms r.r_ident_ms
        (r.r_cold_ms /. r.r_incr_ms)
        (r.r_cold_ms /. r.r_ident_ms))
    rows_irs;
  let headline, ir_cold =
    List.nth rows_irs (List.length rows_irs - 1)
  in
  let jobs_ok = jobs_identity ~ir_cold name in
  List.iter
    (fun (jobs, ok) ->
      Printf.printf "byte-identical to cold (jobs=%d): %b\n" jobs ok)
    jobs_ok;
  let dedups =
    List.map (fun n -> (n, dedup_count n)) [ "resnet18"; "mobilenet" ]
  in
  List.iter
    (fun (n, c) -> Printf.printf "dedup (stamped nodes) %-10s: %d\n" n c)
    dedups;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("  " ^ Util.host_provenance_json () ^ ",\n");
  Buffer.add_string buf (Printf.sprintf "  \"workload\": %S,\n" name);
  Buffer.add_string buf "  \"edit\": \"remove one nn.relu layer\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf "  \"efforts\": [\n";
  List.iteri
    (fun i (r, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"max_parallel_factor\": %d, \"cold_ms\": %.3f, \
            \"incremental_ms\": %.3f, \"identical_ms\": %.3f, \
            \"speedup_edited\": %.2f, \"speedup_identical\": %.2f, \
            \"subtree_hits\": %d, \"subtree_misses\": %d}%s\n"
           r.r_pf r.r_cold_ms r.r_incr_ms r.r_ident_ms
           (r.r_cold_ms /. r.r_incr_ms)
           (r.r_cold_ms /. r.r_ident_ms)
           r.r_hits r.r_misses
           (if i = List.length rows_irs - 1 then "" else ",")))
    rows_irs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_edited\": %.2f,\n"
       (headline.r_cold_ms /. headline.r_incr_ms));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_identical\": %.2f,\n"
       (headline.r_cold_ms /. headline.r_ident_ms));
  Buffer.add_string buf
    (Printf.sprintf "  \"byte_identical\": {%s},\n"
       (String.concat ", "
          (List.map
             (fun (jobs, ok) -> Printf.sprintf "\"jobs%d\": %b" jobs ok)
             jobs_ok)));
  Buffer.add_string buf
    (Printf.sprintf "  \"dedup_stamped\": {%s}\n"
       (String.concat ", "
          (List.map (fun (n, c) -> Printf.sprintf "%S: %d" n c) dedups)));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_incr.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "\nincremental %.2fx, identical %.2fx (pf=%d) — written to \
     BENCH_incr.json\n"
    (headline.r_cold_ms /. headline.r_incr_ms)
    (headline.r_cold_ms /. headline.r_ident_ms)
    headline.r_pf
