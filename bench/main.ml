(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation:

     lenet     Tables 1-2 + Figure 1 (Section 2 case study)
     listing1  Tables 4-6 (running example)
     table7    Table 7 (C++ kernels)
     table8    Table 8 (PyTorch models)
     fig9      Figure 9 (memory vs ScaleHLS)
     fig10     Figure 10 (parallel factor x tile ablation)
     fig11     Figure 11 (IA/CA ablation)
     bechamel  Bechamel timing of the compile pipeline (one Test per table)
     all       everything above (default)

   Usage: dune exec bench/main.exe [-- experiment ...] [-- full] *)

open Bechamel
open Toolkit

(* One Bechamel test per table/figure, timing the compilation pipeline
   that regenerates it (the paper's compile-time columns). *)
let bechamel_tests () =
  let open Hida_estimator in
  let open Hida_core in
  let open Hida_frontend in
  let compile_memref name =
    Staged.stage (fun () ->
        let _m, f = (Polybench.by_name name).Polybench.e_build () in
        ignore (Driver.run_memref ~device:Device.zu3eg f))
  in
  let compile_nn ?(opts = Driver.default) name =
    Staged.stage (fun () ->
        let _m, f = (Models.by_name name).Models.e_build () in
        ignore (Driver.run_nn ~opts ~device:Device.vu9p_slr f))
  in
  Test.make_grouped ~name:"hida" ~fmt:"%s %s"
    [
      Test.make ~name:"table2-lenet-compile"
        (Staged.stage (fun () ->
             let _m, f = Models.lenet () in
             ignore (Driver.run_nn ~device:Device.pynq_z2 f)));
      Test.make ~name:"table4-6-listing1-compile"
        (Staged.stage (fun () ->
             let _m, f = Listing1.build () in
             ignore (Driver.run_memref ~device:Device.zu3eg f)));
      Test.make ~name:"table7-2mm-compile" (compile_memref "2mm");
      Test.make ~name:"table7-correlation-compile" (compile_memref "correlation");
      Test.make ~name:"table8-resnet18-compile" (compile_nn "resnet18");
      Test.make ~name:"table8-mobilenet-compile" (compile_nn "mobilenet");
      Test.make ~name:"fig10-resnet18-tile-sweep"
        (compile_nn
           ~opts:{ Driver.default with tile_size = 2; max_parallel_factor = 16 }
           "resnet18");
      Test.make ~name:"fig11-resnet18-naive"
        (compile_nn
           ~opts:
             {
               Driver.default with
               mode = Parallelize.naive;
               max_parallel_factor = 16;
             }
           "resnet18");
    ]

let run_bechamel () =
  Util.header "Bechamel: compile-pipeline timing (one test per table/figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw_results = Benchmark.all cfg instances (bechamel_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %12.3f ms/run\n" name (est /. 1e6)
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results

let experiments =
  [
    ("lenet", fun ~quick -> Lenet_study.run ~quick ());
    ("listing1", fun ~quick -> ignore quick; Listing1_bench.run ());
    ("table7", fun ~quick -> ignore quick; ignore (Table7.run ()));
    ("table8", fun ~quick -> ignore quick; ignore (Table8.run ()));
    ("fig9", fun ~quick -> ignore quick; Figures.fig9 ());
    ( "fig10",
      fun ~quick ->
        if quick then Figures.fig10 ~pfs:[ 1; 16; 256 ] ~tiles:[ 2; 32 ] ()
        else Figures.fig10 () );
    ( "fig11",
      fun ~quick ->
        if quick then Figures.fig11 ~pfs:[ 1; 16; 64; 256 ] ()
        else Figures.fig11 () );
    ("ablation", fun ~quick -> ignore quick; Ablation.run ());
    ("bechamel", fun ~quick -> ignore quick; run_bechamel ());
    ("dse", fun ~quick -> Dse_bench.run ~quick ());
    ("dse-smoke", fun ~quick -> ignore quick; Dse_bench.run ~smoke:true ());
    ("profile", fun ~quick -> Profile_bench.run ~quick ());
    ( "profile-smoke",
      fun ~quick ->
        ignore quick;
        Profile_bench.run ~smoke:true () );
    ("analyze", fun ~quick -> Analyze_gate.run ~quick ());
    ("serve", fun ~quick -> Serve_bench.run ~quick ());
    ("incr", fun ~quick -> Incr_bench.run ~quick ());
    ( "incr-smoke",
      fun ~quick ->
        ignore quick;
        Incr_bench.run ~smoke:true () );
    ( "serve-smoke",
      fun ~quick ->
        ignore quick;
        Serve_bench.run ~smoke:true () );
    ("sim", fun ~quick -> Sim_bench.run ~quick ());
    ( "sim-smoke",
      fun ~quick ->
        ignore quick;
        Sim_bench.run ~smoke:true () );
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = not (List.mem "full" args) in
  let selected =
    List.filter (fun a -> List.mem_assoc a experiments) args
  in
  let selected =
    if selected = [] then
      List.filter
        (fun n ->
          n <> "dse-smoke" && n <> "profile-smoke" && n <> "serve-smoke"
          && n <> "incr-smoke" && n <> "sim-smoke")
        (List.map fst experiments)
    else selected
  in
  Printf.printf
    "HIDA benchmark harness — regenerating the paper's tables and figures\n";
  Printf.printf "(mode: %s; run with 'full' for the complete sweeps)\n"
    (if quick then "quick" else "full");
  List.iter
    (fun name -> (List.assoc name experiments) ~quick)
    selected;
  Printf.printf "\nDone. Paper-vs-measured commentary lives in EXPERIMENTS.md.\n"
