(* Shared benchmark-harness utilities: table formatting and geometric
   means, plus paper reference values for side-by-side reporting. *)

(* ---- Per-stage compile-time breakdowns (Hida_obs tracer) ----

   The driver reports carry the same span tracer the CLI uses; the
   benchmark tables reuse it so compile-time columns can be broken down
   by pipeline stage. *)

let stage_summary report =
  Hida_obs.Trace.stage_summary report.Hida_core.Driver.trace

let print_stage_breakdown ?max_depth name report =
  Printf.printf "%-14s %s\n" name
    (match max_depth with
    | Some d ->
        "\n" ^ Hida_obs.Trace.report ~max_depth:d report.Hida_core.Driver.trace
    | None -> stage_summary report)

(* Top [n] pipeline stages by time, compactly. *)
let top_stages ?(n = 3) report =
  let tr = report.Hida_core.Driver.trace in
  let stages =
    List.concat_map Hida_obs.Trace.children (Hida_obs.Trace.roots tr)
    @ List.filter
        (fun sp -> Hida_obs.Trace.children sp = [])
        (Hida_obs.Trace.roots tr)
  in
  let sorted =
    List.sort
      (fun a b ->
        compare (Hida_obs.Trace.duration tr b) (Hida_obs.Trace.duration tr a))
      stages
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  String.concat ", "
    (List.map
       (fun sp ->
         Printf.sprintf "%s %.2fms" (Hida_obs.Trace.name sp)
           (1000. *. Hida_obs.Trace.duration tr sp))
       (take n sorted))

let geomean = function
  | [] -> nan
  | xs ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int (List.length xs))

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let fmt_opt = function None -> "-" | Some x -> Printf.sprintf "%.2f" x

let ratio a b =
  match (a, b) with
  | Some a, Some b when b > 0. -> Some (a /. b)
  | _ -> None

let fmt_ratio = function None -> "-" | Some r -> Printf.sprintf "(%.2fx)" r

(* A simple ASCII scatter for Figure 1-style plots: points bucketed on a
   [width] x [height] grid. *)
let ascii_scatter ~width ~height ~xlabel ~ylabel points =
  match points with
  | [] -> ()
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let xmin = List.fold_left min infinity xs
      and xmax = List.fold_left max neg_infinity xs in
      let ymin = List.fold_left min infinity ys
      and ymax = List.fold_left max neg_infinity ys in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let xi =
            int_of_float
              (float_of_int (width - 1) *. (x -. xmin) /. max 1e-9 (xmax -. xmin))
          in
          let yi =
            int_of_float
              (float_of_int (height - 1) *. (y -. ymin) /. max 1e-9 (ymax -. ymin))
          in
          let c = grid.(height - 1 - yi).(xi) in
          grid.(height - 1 - yi).(xi) <-
            (match c with ' ' -> '.' | '.' -> ':' | ':' -> '*' | _ -> '#'))
        points;
      Printf.printf "%s (max %.3g)\n" ylabel ymax;
      Array.iter
        (fun row ->
          print_char '|';
          Array.iter print_char row;
          print_newline ())
        grid;
      Printf.printf "+%s\n %s (%.3g .. %.3g)\n" (String.make width '-') xlabel
        xmin xmax

(* ---- Host provenance ----

   Every BENCH_*.json records the machine shape it was measured on, so
   numbers checked into different environments can be told apart. *)

let host_provenance_json () =
  Printf.sprintf "\"host\": {\"domains\": %d, \"ocaml\": %S}"
    (Domain.recommended_domain_count ())
    Sys.ocaml_version
