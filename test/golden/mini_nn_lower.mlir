// RUN: lower-nn
// PyTorch path: nn ops lower to hida ports (weights), buffers (feature
// maps) and affine loop nests; the padded conv input materializes as an
// on-chip line buffer.
func.func {sym_name = "mini", type = (memref<1x4x4xi16>) -> ()} {
                                                                   ^bb(%0 : memref<1x4x4xi16>):
                                                                   %1 = nn.weight {seed = 2} : tensor<2x1x3x3xi16>
                                                                   %2 = nn.weight {seed = 3} : tensor<2xi16>
                                                                   %3 = nn.conv2d(%0, %1, %2) {pad = 1, stride = 1} : tensor<2x4x4xi16>
                                                                   %4 = nn.relu(%3) : tensor<2x4x4xi16>
                                                                   %5 = nn.flatten(%4) : tensor<32xi16>
                                                                   %6 = nn.weight {seed = 4} : tensor<3x32xi16>
                                                                   %7 = nn.weight {seed = 5} : tensor<3xi16>
                                                                   %8 = nn.linear(%5, %6, %7) : tensor<3xi16>
                                                                   func.return(%8)
}

// CHECK-LABEL: func.func {sym_name = "mini"
// CHECK-NOT: nn.conv2d
// CHECK: %w_1 = hida.port {kind = "maxi", latency = 64, seed = 2} : memref<2x1x3x3xi16>
// CHECK: %fm_5 = hida.buffer
// CHECK: hida.schedule(%0, %w_1, %w_2, %fm_5, %w_3, %w_4, %fm_6) {
// CHECK: %padded_19 = hida.buffer {{.*}} : memref<1x6x6xi16>
// CHECK: hida.node(%10, %11, %12, %13) {ro_count = 3} {
// CHECK: func.return(%fm_6)
