// RUN: parse
// Nested regions, multi-block regions with block arguments, quoted
// (non-identifier) op names, and result values threaded across ops.

func.func {sym_name = "regions", type = (i32) -> ()} {
  ^bb(%n : i32):
  %r = "weird op name!"(%n) {note = "quoted because not an identifier"} : i32
  test.two_blocks {
    ^bb(%p : i32):
    %q = test.inc(%p) : i32
    test.sink(%q)
    ^bb(%u : f32, %w : f32):
    %z = test.addf(%u, %w) : f32
    test.sink(%z)
  }
  test.use(%r)
  func.return
}

// CHECK-LABEL: func.func {sym_name = "regions"
// CHECK: %r_1 = "weird op name!"(%n_0) {note = "quoted because not an identifier"} : i32
// CHECK: ^bb(%p_2 : i32):
// CHECK: %q_3 = test.inc(%p_2) : i32
// CHECK: ^bb(%u_4 : f32, %w_5 : f32):
// CHECK: %z_6 = test.addf(%u_4, %w_5) : f32
// CHECK: test.use(%r_1)
