// RUN: multi-producer
// Fig. 7 shape: the internal buffer written by two nodes is duplicated,
// the second producer's duplicate is seeded by an explicit hida.copy,
// and downstream users are rewired to the duplicate.
func.func {sym_name = "multi_producer", type = (memref<8xf32>, memref<8xf32>) -> ()} {

  ^bb(%x_0 : memref<8xf32>, %out_1 : memref<8xf32>):
  %buf_2 = memref.alloc : memref<8xf32>
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%3 : index):
                                                 %4 = affine.load(%x_0, %3) : f32
                                                 %5 = arith.constant {value = 2.} : f32
                                                 %6 = arith.mulf(%4, %5) : f32
                                                 affine.store(%6, %buf_2, %3)
                                                 affine.yield
  }
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%7 : index):
                                                 %8 = affine.load(%buf_2, %7) : f32
                                                 %9 = arith.constant {value = 1.} : f32
                                                 %10 = arith.addf(%8, %9) : f32
                                                 affine.store(%10, %buf_2, %7)
                                                 affine.yield
  }
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%11 : index):
                                                 %12 = affine.load(%buf_2, %11) : f32
                                                 %13 = arith.constant {value = 3.} : f32
                                                 %14 = arith.mulf(%12, %13) : f32
                                                 affine.store(%14, %out_1, %11)
                                                 affine.yield
  }
  func.return
}

// CHECK-LABEL: func.func {sym_name = "multi_producer"
// CHECK: %buf_2 = hida.buffer
// CHECK: %buf_3 = hida.buffer
// CHECK: hida.schedule(%x_0, %buf_2, %out_1, %buf_3) {
// CHECK: hida.node(%4, %5) {ro_count = 1} {
// CHECK: hida.node(%5, %7) {ro_count = 1} {
// CHECK: hida.copy(%14, %15)
// CHECK: hida.node(%7, %6) {ro_count = 1} {
