// RUN: parse
// Affine-map attributes: composed access maps, symbols, and the fully
// parenthesized canonical expression form the printer emits.

func.func {sym_name = "affine_attrs", type = (memref<4x4xf32>, memref<16xf32>) -> ()} {
  ^bb(%a : memref<4x4xf32>, %out : memref<16xf32>):
  affine.for {lower = 0, step = 1, upper = 4} {
    ^bb(%i : index):
    affine.for {lower = 0, step = 1, upper = 4} {
      ^bb(%j : index):
      %v = affine.load(%a, %i, %j) {map = (d0, d1)[] -> (d0, d1)} : f32
      affine.store(%v, %out, %i, %j) {map = (d0, d1)[] -> (((d0 * 4) + d1))}
      affine.yield
    }
    affine.yield
  }
  test.bound {guard = (d0)[s0] -> ((s0 + (-1 * d0)), ((d0 * 2) + 1), (d0 floordiv 2), (d0 mod 3))}
  func.return
}

// CHECK-LABEL: func.func {sym_name = "affine_attrs"
// CHECK: affine.for {lower = 0, step = 1, upper = 4}
// CHECK: %v_4 = affine.load(%a_0, %i_2, %j_3) {map = (d0, d1)[] -> (d0, d1)} : f32
// CHECK-NEXT: affine.store(%v_4, %out_1, %i_2, %j_3) {map = (d0, d1)[] -> (((d0 * 4) + d1))}
// CHECK: test.bound {guard = (d0)[s0] -> ((s0 + (-1 * d0)), ((d0 * 2) + 1), (d0 floordiv 2), (d0 mod 3))}
