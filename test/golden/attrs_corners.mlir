// RUN: parse
// Attribute corner cases: escaped strings, negative ints, canonical
// floats, homogeneous lists, and type attributes.  The harness parses
// this file, re-prints it canonically, and matches the CHECK lines.

func.func {sym_name = "attrs", type = () -> ()} {
  test.attrs {empty = [], f_exp = 1e-3, f_int = 2., f_neg = -1.5,
              i_neg = -42, ints = [1, 2, 3],
              s_escape = "line1\nline2\ttab \"quoted\" back\\slash",
              strs = ["a", "b c", "d.e"], ty = memref<4x4xf32>}
  func.return
}

// CHECK-LABEL: func.func {sym_name = "attrs"
// CHECK: test.attrs {empty = [], f_exp = 0.001, f_int = 2., f_neg = -1.5, i_neg = -42, ints = [1, 2, 3], s_escape = "line1\nline2\ttab \"quoted\" back\\slash", strs = ["a", "b c", "d.e"], ty = memref<4x4xf32>}
// CHECK-NEXT: func.return
