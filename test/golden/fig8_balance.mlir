// RUN: balance
// Fig. 8 shape: the short path of the fork-join (buffer b) gains an
// explicit copy node so both paths cross the same number of pipeline
// stages, and the join node reads the copied buffer.
func.func {sym_name = "fork_join", type = (memref<8xf32>, memref<8xf32>) -> ()} {

  ^bb(%x_0 : memref<8xf32>, %out_1 : memref<8xf32>):
  %a_2 = memref.alloc : memref<8xf32>
  %b_3 = memref.alloc : memref<8xf32>
  %c_4 = memref.alloc : memref<8xf32>
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%5 : index):
                                                 %6 = affine.load(%x_0, %5) : f32
                                                 %7 = arith.constant {value = 2.} : f32
                                                 %8 = arith.mulf(%6, %7) : f32
                                                 affine.store(%8, %a_2, %5)
                                                 %9 = arith.constant {value = 3.} : f32
                                                 %10 = arith.addf(%6, %9) : f32
                                                 affine.store(%10, %b_3, %5)
                                                 affine.yield
  }
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%11 : index):
                                                 %12 = affine.load(%a_2, %11) : f32
                                                 %13 = arith.mulf(%12, %12) : f32
                                                 affine.store(%13, %c_4, %11)
                                                 affine.yield
  }
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%14 : index):
                                                 %15 = affine.load(%b_3, %14) : f32
                                                 %16 = affine.load(%c_4, %14) : f32
                                                 %17 = arith.addf(%15, %16) : f32
                                                 affine.store(%17, %out_1, %14)
                                                 affine.yield
  }
  func.return
}

// CHECK-LABEL: func.func {sym_name = "fork_join"
// CHECK: %b_3 = hida.buffer
// CHECK: %b_4 = hida.buffer
// CHECK: hida.schedule(%x_0, %a_2, %b_3, %c_5, %out_1, %b_4) {
// CHECK: hida.node(%8, %11) {ro_count = 1} {
// CHECK: hida.copy(%26, %27)
// CHECK: hida.node(%11, %9, %10) {ro_count = 2} {
