// RUN: parse
// Type grammar corners: multi-dim memrefs/tensors, rank-0 memref,
// streams, scalar widths, and function types with results.

func.func {sym_name = "types", type = (memref<2x3x4xf32>, memref<f32>) -> (i32)} {
  ^bb(%a : memref<2x3x4xf32>, %b : memref<f32>):
  %t = test.make_tensor : tensor<1x7xi8>
  %s = test.make_stream : stream<f32, 4>
  %c = test.scalars {ft = f64, it = i1, widths = [8, 16, 32]} : i32
  test.use(%a, %b, %t, %s)
  func.return(%c)
}

// CHECK-LABEL: func.func {sym_name = "types", type = (memref<2x3x4xf32>, memref<f32>) -> (i32)}
// CHECK: ^bb(%a_0 : memref<2x3x4xf32>, %b_1 : memref<f32>):
// CHECK: %t_2 = test.make_tensor : tensor<1x7xi8>
// CHECK-NEXT: %s_3 = test.make_stream : stream<f32, 4>
// CHECK-NEXT: %c_4 = test.scalars {ft = f64, it = i1, widths = [8, 16, 32]} : i32
// CHECK-NEXT: test.use(%a_0, %b_1, %t_2, %s_3)
// CHECK-NEXT: func.return(%c_4)
