// RUN: construct
// Algorithm 1: functional dataflow construction wraps the dispatchable
// function body in hida.dispatch and each loop nest in its own
// hida.task.
func.func {sym_name = "two_stage", type = (memref<8xf32>, memref<8xf32>) -> ()} {

  ^bb(%x_0 : memref<8xf32>, %y_1 : memref<8xf32>):
  %tmp_2 = memref.alloc : memref<8xf32>
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%3 : index):
                                                 %4 = affine.load(%x_0, %3) : f32
                                                 %5 = arith.constant {value = 2.} : f32
                                                 %6 = arith.mulf(%4, %5) : f32
                                                 affine.store(%6, %tmp_2, %3)
                                                 affine.yield
  }
  affine.for {lower = 0, step = 1, upper = 8} {
                                                 ^bb(%7 : index):
                                                 %8 = affine.load(%tmp_2, %7) : f32
                                                 %9 = arith.constant {value = 1.} : f32
                                                 %10 = arith.addf(%8, %9) : f32
                                                 affine.store(%10, %y_1, %7)
                                                 affine.yield
  }
  func.return
}

// CHECK-LABEL: func.func {sym_name = "two_stage"
// CHECK: hida.dispatch {
// CHECK: hida.task {
// CHECK: affine.for {lower = 0, step = 1, upper = 8}
// CHECK: hida.task {
// CHECK: affine.for {lower = 0, step = 1, upper = 8}
// CHECK: hida.yield
