(* Tests for the serve subsystem: JSON/protocol round-trips (property
   tested), frame-error handling on strings and live fds, deterministic
   single-flight coalescing, and an end-to-end socket test asserting
   that a warm hit returns the byte-identical artifact of a cold local
   compile for every zoo workload. *)

open Hida_serve
open Helpers

(* ---- Generators ---- *)

let gen_opts : Protocol.compile_opts QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* co_device = oneofl [ "pynq-z2"; "zu3eg"; "vu9p-slr" ] in
  let* co_mode = oneofl [ "ia+ca"; "ia"; "ca"; "naive" ] in
  let* co_pf = 1 -- 512 in
  let* co_tile = 1 -- 64 in
  let* co_jobs = 1 -- 8 in
  let* co_fusion = bool in
  let* co_balance = bool in
  let* co_dataflow = bool in
  return
    {
      Protocol.co_device;
      co_mode;
      co_pf;
      co_tile;
      co_jobs;
      co_fusion;
      co_balance;
      co_dataflow;
    }

(* Arbitrary bytes on purpose: the JSON layer must round-trip control
   characters, quotes, backslashes and non-UTF-8 bytes at byte level. *)
let gen_source : Protocol.source QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      map (fun s -> Protocol.Zoo s) (string_size (0 -- 24));
      map (fun s -> Protocol.Ir_text s) (string_size (0 -- 200));
    ]

let gen_request : Protocol.request QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      map2
        (fun src opts -> Protocol.Compile (src, opts))
        gen_source gen_opts;
      return Protocol.Status;
      return Protocol.Ping;
      return Protocol.Shutdown;
    ]

(* Floats built from dyadic rationals round-trip exactly through the
   decimal printer. *)
let gen_small_float =
  QCheck2.Gen.map (fun n -> float_of_int n /. 16.) QCheck2.Gen.(-10000 -- 10000)

let gen_response : Protocol.response QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_meta =
    let* am_key = string_size (0 -- 32) in
    let* am_workload = string_size (0 -- 16) in
    let* am_latency = 0 -- 1_000_000 in
    let* am_interval = 0 -- 1_000_000 in
    let* am_throughput = gen_small_float in
    let* am_dsp_efficiency = gen_small_float in
    let* am_compile_seconds = gen_small_float in
    return
      {
        Protocol.am_key;
        am_workload;
        am_latency;
        am_interval;
        am_throughput;
        am_dsp_efficiency;
        am_compile_seconds;
      }
  in
  oneof
    [
      (let* cr_meta = gen_meta in
       let* cr_ir = string_size (0 -- 300) in
       let* cr_cached = bool in
       let* cr_coalesced = bool in
       let* cr_server_ns = 0 -- 1_000_000_000 in
       return
         (Protocol.Ok_compile
            { Protocol.cr_meta; cr_ir; cr_cached; cr_coalesced; cr_server_ns }));
      map
        (fun n -> Protocol.Ok_status (Json.Obj [ ("requests", Json.Int n) ]))
        (0 -- 1000);
      return Protocol.Ok_pong;
      return Protocol.Ok_shutdown;
      map (fun s -> Protocol.Err s) (string_size (0 -- 64));
    ]

(* ---- Protocol round-trips ---- *)

let prop_request_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"request json round-trip" ~count:500 gen_request
       (fun req ->
         match
           Protocol.request_of_json
             (Json.parse_exn (Json.to_string (Protocol.request_to_json req)))
         with
         | Ok req' -> req = req'
         | Error _ -> false))

let prop_response_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"response json round-trip" ~count:500 gen_response
       (fun resp ->
         match
           Protocol.response_of_json
             (Json.parse_exn (Json.to_string (Protocol.response_to_json resp)))
         with
         | Ok resp' -> resp = resp'
         | Error _ -> false))

let prop_frame_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"frame/deframe round-trip with rest" ~count:500
       QCheck2.Gen.(pair (string_size (0 -- 300)) (string_size (0 -- 50)))
       (fun (payload, rest) ->
         match Protocol.deframe (Protocol.frame payload ^ rest) with
         | Ok (p, r) -> p = payload && r = rest
         | Error _ -> false))

let test_json_escaping () =
  let nasty = "\x00\x01\x1f\"\\\n\r\t\x7f\xff plain" in
  let j = Json.Obj [ ("s", Json.Str nasty) ] in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "nasty string did not parse back: %s" e
  | Ok j' ->
      checkb "control/quote/high bytes round-trip" (j = j');
      check Alcotest.string "value preserved" nasty
        (match Json.member "s" j' with
        | Some (Json.Str s) -> s
        | _ -> "<missing>")

(* ---- Frame errors ---- *)

let test_deframe_errors () =
  let f = Protocol.frame "hello" in
  (* Every proper prefix is Truncated (or Closed when empty). *)
  for k = 0 to String.length f - 1 do
    match Protocol.deframe (String.sub f 0 k) with
    | Error Protocol.Closed -> checkb "only the empty buffer is Closed" (k = 0)
    | Error (Protocol.Truncated _) -> checkb "prefix is truncated" (k > 0)
    | Error e ->
        Alcotest.failf "prefix %d: unexpected %s" k
          (Protocol.frame_error_to_string e)
    | Ok _ -> Alcotest.failf "prefix %d parsed as a whole frame" k
  done;
  (* A declared length over the ceiling is rejected before payload. *)
  let oversized = Protocol.frame (String.make 64 'x') in
  (match Protocol.deframe ~max_bytes:16 oversized with
  | Error (Protocol.Oversized 64) -> ()
  | _ -> Alcotest.fail "expected Oversized 64");
  (* Two frames pipelined in one buffer split cleanly. *)
  match Protocol.deframe (Protocol.frame "a" ^ Protocol.frame "bb") with
  | Ok ("a", rest) -> (
      match Protocol.deframe rest with
      | Ok ("bb", "") -> ()
      | _ -> Alcotest.fail "second frame did not deframe")
  | _ -> Alcotest.fail "first frame did not deframe"

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let test_read_frame_errors () =
  (* Clean close before any byte: Closed. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "expected Closed on clean EOF");
  (* EOF mid-payload: Truncated. *)
  with_socketpair (fun a b ->
      let f = Protocol.frame "payload" in
      write_all a (String.sub f 0 (String.length f - 3));
      Unix.close a;
      match Protocol.read_frame b with
      | Error (Protocol.Truncated _) -> ()
      | _ -> Alcotest.fail "expected Truncated on mid-frame EOF");
  (* Oversized declared length is rejected without reading the payload. *)
  with_socketpair (fun a b ->
      write_all a "\xff\xff\xff\xff";
      Unix.close a;
      match Protocol.read_frame b with
      | Error (Protocol.Oversized _) -> ()
      | _ -> Alcotest.fail "expected Oversized");
  (* Garbage JSON in a well-formed frame: Malformed, not an exception. *)
  with_socketpair (fun a b ->
      write_all a (Protocol.frame "{not json");
      Unix.close a;
      match Protocol.read_request b with
      | Error (Protocol.Malformed _) -> ()
      | _ -> Alcotest.fail "expected Malformed");
  (* Round trip over a real fd. *)
  with_socketpair (fun a b ->
      Protocol.write_frame a "abc";
      match Protocol.read_frame b with
      | Ok "abc" -> ()
      | _ -> Alcotest.fail "fd round trip failed")

(* ---- Single-flight coalescing (deterministic) ---- *)

(* The leader's compute spins until the follower has registered (its
   coalesced counter bumps *before* it blocks), so exactly one of the
   two concurrent calls runs the computation — no timing assumptions. *)
let test_single_flight_coalesce () =
  let t = Scheduler.Single_flight.create () in
  let runs = Atomic.make 0 in
  let compute () =
    while Scheduler.Single_flight.coalesced_total t < 1 do
      Unix.sleepf 0.001
    done;
    Atomic.incr runs;
    42
  in
  let d1 = Domain.spawn (fun () -> Scheduler.Single_flight.run t "k" compute) in
  let d2 = Domain.spawn (fun () -> Scheduler.Single_flight.run t "k" compute) in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  checki "computation ran exactly once" 1 (Atomic.get runs);
  checki "one leader" 1 (Scheduler.Single_flight.leaders_total t);
  checki "coalesce counter is 1" 1 (Scheduler.Single_flight.coalesced_total t);
  checki "leader value" 42 r1.Scheduler.Single_flight.value;
  checki "follower value" 42 r2.Scheduler.Single_flight.value;
  checkb "exactly one reply is coalesced"
    (r1.Scheduler.Single_flight.coalesced <> r2.Scheduler.Single_flight.coalesced);
  (* A later call for the same key starts a fresh flight. *)
  let r3 = Scheduler.Single_flight.run t "k" (fun () -> 7) in
  checki "fresh flight after completion" 7 r3.Scheduler.Single_flight.value;
  checki "two leaders total" 2 (Scheduler.Single_flight.leaders_total t)

(* A leader failure propagates to its followers but leaves the table
   usable for the next request. *)
let test_single_flight_error () =
  let t = Scheduler.Single_flight.create () in
  (match Scheduler.Single_flight.run t "bad" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the leader's exception"
  | exception Failure m -> check Alcotest.string "leader exn" "boom" m);
  let r = Scheduler.Single_flight.run t "bad" (fun () -> 1) in
  checki "key reusable after failure" 1 r.Scheduler.Single_flight.value

(* ---- Worker pool ---- *)

let test_pool_bounded () =
  let processed = Atomic.make 0 in
  let gate = Atomic.make false in
  let p =
    Scheduler.create_pool ~workers:1 ~queue_limit:2 (fun () ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.001
        done;
        Atomic.incr processed)
  in
  (* One job occupies the worker; two fill the queue; the next sheds. *)
  checkb "job 1 accepted" (Scheduler.submit p ());
  (* Wait until the worker picked job 1 up, so queue capacity is exact. *)
  let rec settle n =
    if n > 0 && Scheduler.queue_depth p > 0 then begin
      Unix.sleepf 0.001;
      settle (n - 1)
    end
  in
  settle 1000;
  checkb "job 2 accepted" (Scheduler.submit p ());
  checkb "job 3 accepted" (Scheduler.submit p ());
  checkb "job 4 rejected at the bound" (not (Scheduler.submit p ()));
  checki "one rejection counted" 1 (Scheduler.rejected p);
  Atomic.set gate true;
  Scheduler.shutdown p;
  checki "accepted jobs all processed" 3 (Atomic.get processed)

(* ---- Artifact store ---- *)

let artifact ~key ~size =
  ignore key;
  {
    Artifact.a_meta =
      {
        Protocol.am_key = key;
        am_workload = "w";
        am_latency = 1;
        am_interval = 1;
        am_throughput = 1.;
        am_dsp_efficiency = 1.;
        am_compile_seconds = 0.;
      };
    a_ir = String.make size 'i';
  }

let test_store_lru () =
  (* Budget fits four artifacts.  Once a fifth pushes the store over,
     the blob store sweeps the least-recently-used entries down to 3/4
     of the budget — recently used entries survive, stale ones go. *)
  let one = Artifact.bytes (artifact ~key:"x" ~size:1000) in
  let s = Artifact.create_store ~budget_bytes:(4 * one) () in
  List.iter
    (fun k -> Artifact.add s ~key:k (artifact ~key:k ~size:1000))
    [ "a"; "b"; "c"; "d" ];
  checkb "b present" (Artifact.find s "b" <> None);
  (* "b" is now the most recently used; adding "e" sweeps the two
     oldest untouched entries ("a" then "c") down to the 3/4 target. *)
  Artifact.add s ~key:"e" (artifact ~key:"e" ~size:1000);
  checkb "a evicted as LRU" (Artifact.find s "a" = None);
  checkb "c evicted as LRU" (Artifact.find s "c" = None);
  checkb "b survived (recently used)" (Artifact.find s "b" <> None);
  checkb "d survived" (Artifact.find s "d" <> None);
  (* Artifacts round-trip through the JSON blob encoding intact. *)
  (match Artifact.find s "e" with
  | None -> Alcotest.fail "e present"
  | Some e ->
      Alcotest.(check string) "meta key survives" "e" e.Artifact.a_meta.Protocol.am_key;
      checki "ir survives" 1000 (String.length e.Artifact.a_ir));
  let st = Artifact.stats s in
  checki "two evictions" 2 st.Artifact.s_evictions;
  checki "three entries" 3 st.Artifact.s_entries;
  (* An artifact larger than the whole budget is refused outright. *)
  Artifact.add s ~key:"huge" (artifact ~key:"huge" ~size:(5 * one));
  checkb "oversized artifact not stored" (Artifact.find s "huge" = None)

let test_artifact_keys () =
  let opts = Protocol.default_opts in
  let k1 = Artifact.key (Protocol.Zoo "lenet") opts in
  let k2 = Artifact.key (Protocol.Zoo "lenet") opts in
  let k3 = Artifact.key (Protocol.Zoo "resnet18") opts in
  let k4 =
    Artifact.key (Protocol.Zoo "lenet") { opts with Protocol.co_pf = 8 }
  in
  (* jobs only changes how the DSE is scheduled, never the design; it
     must not fragment the cache. *)
  let k5 =
    Artifact.key (Protocol.Zoo "lenet") { opts with Protocol.co_jobs = 7 }
  in
  check Alcotest.string "key is deterministic" k1 k2;
  checkb "workload changes the key" (k1 <> k3);
  checkb "semantic option changes the key" (k1 <> k4);
  check Alcotest.string "jobs does not change the key" k1 k5

(* ---- End-to-end over the socket ---- *)

let e2e_socket =
  Printf.sprintf "/tmp/hida-serve-test-%d.sock" (Unix.getpid ())

let with_server f =
  let config =
    {
      Server.default_config with
      Server.cf_socket = e2e_socket;
      cf_workers = 2;
      cf_verbose = false;
    }
  in
  let server = Domain.spawn (fun () -> Server.run config) in
  let rec await n =
    if n = 0 then Alcotest.fail "server did not come up"
    else
      match Client.ping ~socket:e2e_socket with
      | Ok () -> ()
      | Error _ ->
          Unix.sleepf 0.02;
          await (n - 1)
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      (match Client.stop ~socket:e2e_socket with Ok () -> () | Error _ -> ());
      Domain.join server)
    (fun () -> f e2e_socket)

let zoo_workloads () =
  List.map (fun e -> e.Hida_frontend.Models.e_name) Hida_frontend.Models.all
  @ List.map
      (fun e -> e.Hida_frontend.Polybench.e_name)
      Hida_frontend.Polybench.all
  @ List.map
      (fun e -> e.Hida_frontend.Polybench_extra.e_name)
      Hida_frontend.Polybench_extra.all
  @ [ "listing1" ]

(* For every zoo workload: a cold served compile, then a warm hit, and
   both must carry the byte-identical IR of a local pipeline run of the
   same request. *)
let test_e2e_warm_hit_identical () =
  with_server (fun socket ->
      let opts = Protocol.default_opts in
      List.iter
        (fun name ->
          let src = Protocol.Zoo name in
          let cold =
            match Client.compile ~socket src opts with
            | Ok r -> r
            | Error e -> Alcotest.failf "%s: cold compile failed: %s" name e
          in
          checkb (name ^ ": first compile is cold")
            (not cold.Protocol.cr_cached);
          let warm =
            match Client.compile ~socket src opts with
            | Ok r -> r
            | Error e -> Alcotest.failf "%s: warm compile failed: %s" name e
          in
          checkb (name ^ ": second compile hits") warm.Protocol.cr_cached;
          let local =
            match Artifact.compile src opts with
            | Ok a -> a
            | Error e -> Alcotest.failf "%s: local compile failed: %s" name e
          in
          checkb
            (name ^ ": warm artifact byte-identical to local compile")
            (String.equal warm.Protocol.cr_ir local.Artifact.a_ir);
          check Alcotest.string
            (name ^ ": cold and warm artifacts identical")
            cold.Protocol.cr_ir warm.Protocol.cr_ir;
          check Alcotest.string
            (name ^ ": stable artifact key")
            cold.Protocol.cr_meta.Protocol.am_key
            warm.Protocol.cr_meta.Protocol.am_key)
        (zoo_workloads ()))

(* Two identical concurrent requests for an unseen key: the status
   counters must show exactly one pipeline run for them, and one of the
   two replies coalesced (the slow vgg16 compile gives the follower a
   wide window to attach; if it somehow arrives late it is a cache hit,
   which the pipeline-run assertion still catches). *)
let test_e2e_coalesce_single_run () =
  with_server (fun socket ->
      let src = Protocol.Zoo "vgg16" in
      let opts = { Protocol.default_opts with Protocol.co_pf = 8; co_tile = 8 } in
      let runs_before =
        match Client.status ~socket with
        | Ok st -> Json.get_int "pipeline_runs" st
        | Error e -> Alcotest.failf "status failed: %s" e
      in
      let spawn () =
        Domain.spawn (fun () -> Client.compile ~socket src opts)
      in
      let d1 = spawn () in
      (* Give the leader a head start into its (long) compile. *)
      Unix.sleepf 0.05;
      let d2 = spawn () in
      let r1 =
        match Domain.join d1 with
        | Ok r -> r
        | Error e -> Alcotest.failf "first client failed: %s" e
      in
      let r2 =
        match Domain.join d2 with
        | Ok r -> r
        | Error e -> Alcotest.failf "second client failed: %s" e
      in
      let runs_after =
        match Client.status ~socket with
        | Ok st -> Json.get_int "pipeline_runs" st
        | Error e -> Alcotest.failf "status failed: %s" e
      in
      checki "exactly one pipeline run for two identical requests" 1
        (runs_after - runs_before);
      check Alcotest.string "both clients got the same artifact"
        r1.Protocol.cr_ir r2.Protocol.cr_ir;
      checkb "the second reply reused the first compile"
        (r2.Protocol.cr_coalesced || r2.Protocol.cr_cached))

(* Malformed and unrepresentable requests come back as Err responses on
   a live connection — the server must not drop it or die. *)
let test_e2e_bad_requests () =
  with_server (fun socket ->
      (match
         Client.compile ~socket (Protocol.Zoo "no-such-model")
           Protocol.default_opts
       with
      | Error e -> checkb "unknown workload is a server error" (e <> "")
      | Ok _ -> Alcotest.fail "unknown workload compiled");
      (match
         Client.compile ~socket (Protocol.Ir_text "func.func oops {")
           Protocol.default_opts
       with
      | Error e -> checkb "bad IR is a server error" (e <> "")
      | Ok _ -> Alcotest.fail "unparsable IR compiled");
      (* The connection stays serviceable for the next request. *)
      match Client.ping ~socket with
      | Ok () -> ()
      | Error e -> Alcotest.failf "server unhealthy after bad requests: %s" e)

(* Textual-IR sources are first-class: the same module text must hit on
   the second request. *)
let test_e2e_ir_text_source () =
  with_server (fun socket ->
      let _m, f = Hida_frontend.Listing1.build () in
      ignore f;
      let text = Hida_ir.Printer.op_to_string _m in
      let src = Protocol.Ir_text text in
      let cold =
        match Client.compile ~socket src Protocol.default_opts with
        | Ok r -> r
        | Error e -> Alcotest.failf "ir-text cold compile failed: %s" e
      in
      let warm =
        match Client.compile ~socket src Protocol.default_opts with
        | Ok r -> r
        | Error e -> Alcotest.failf "ir-text warm compile failed: %s" e
      in
      checkb "ir-text second compile hits" warm.Protocol.cr_cached;
      check Alcotest.string "ir-text artifacts identical" cold.Protocol.cr_ir
        warm.Protocol.cr_ir)

let tests =
  [
    prop_request_roundtrip;
    prop_response_roundtrip;
    prop_frame_roundtrip;
    Alcotest.test_case "json escaping of hostile strings" `Quick
      test_json_escaping;
    Alcotest.test_case "deframe error taxonomy" `Quick test_deframe_errors;
    Alcotest.test_case "fd frame errors" `Quick test_read_frame_errors;
    Alcotest.test_case "single-flight coalesces to one run" `Quick
      test_single_flight_coalesce;
    Alcotest.test_case "single-flight leader failure" `Quick
      test_single_flight_error;
    Alcotest.test_case "worker pool sheds at the bound" `Quick
      test_pool_bounded;
    Alcotest.test_case "artifact store LRU eviction" `Quick test_store_lru;
    Alcotest.test_case "artifact keys" `Quick test_artifact_keys;
    Alcotest.test_case "e2e warm hits byte-identical (all zoo)" `Quick
      test_e2e_warm_hit_identical;
    Alcotest.test_case "e2e identical concurrent requests run once" `Quick
      test_e2e_coalesce_single_run;
    Alcotest.test_case "e2e bad requests answered with errors" `Quick
      test_e2e_bad_requests;
    Alcotest.test_case "e2e textual-IR source" `Quick test_e2e_ir_text_source;
  ]
