(* Tests for hida.text: positioned parser diagnostics, the round-trip
   law [print (parse (print m)) = print m] over every frontend workload
   at three pipeline stages, and a qcheck property over randomly
   generated modules. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_core
open Hida_frontend
open Hida_text

let checks = Alcotest.(check string)

(* ---- round-trip law ---- *)

let roundtrip_exn label f =
  let s1 = Printer.op_to_string f in
  match Parser.parse_string ~filename:label s1 with
  | Error d -> Alcotest.failf "%s: %s" label (Parser.diag_to_string d)
  | Ok op ->
      let s2 = Printer.op_to_string op in
      checks (label ^ ": print/parse/print fixpoint") s1 s2

(* The three pipeline stages every workload is checked at: as built by
   the frontend, after dataflow lowering, and after the full HIDA-OPT
   pipeline. *)
let lower_stage ~nn f =
  let mgr = Pass.manager ~verify_each:true () in
  Pass.add mgr Canonicalize.pass;
  Pass.add mgr Construct.pass;
  Pass.add mgr (Fusion.pass ());
  if nn then Pass.add mgr (Lowering.nn_pass ())
  else Pass.add mgr (Pass.make ~name:"lowering" Lowering.lower_memref_func);
  Pass.run mgr f

let staged_roundtrips name ~nn build =
  let _m, f = build () in
  roundtrip_exn (name ^ "@front") f;
  let _m, f = build () in
  lower_stage ~nn f;
  roundtrip_exn (name ^ "@lowered") f;
  let _m, f = build () in
  ignore
    (if nn then Driver.compile_nn f else Driver.compile_memref f);
  roundtrip_exn (name ^ "@optimized") f

let model_tests =
  List.map
    (fun e ->
      Alcotest.test_case ("roundtrip " ^ e.Models.e_name) `Quick (fun () ->
          staged_roundtrips e.Models.e_name ~nn:true e.Models.e_build))
    Models.all

let kernel_tests =
  List.map
    (fun e ->
      Alcotest.test_case ("roundtrip " ^ e.Polybench.e_name) `Quick (fun () ->
          staged_roundtrips e.Polybench.e_name ~nn:false e.Polybench.e_build))
    Polybench.all
  @ List.map
      (fun e ->
        Alcotest.test_case ("roundtrip " ^ e.Polybench_extra.e_name) `Quick
          (fun () ->
            staged_roundtrips e.Polybench_extra.e_name ~nn:false
              e.Polybench_extra.e_build))
      Polybench_extra.all

(* ---- parsing details ---- *)

let test_parse_structure () =
  let src =
    {|// a comment
func.func {sym_name = "f", type = (i32) -> (i32)} {
  ^bb(%x : i32):
  %y = test.inc(%x) {delta = 1} : i32
  func.return(%y)
}|}
  in
  let f = Parser.parse_string_exn src in
  Alcotest.(check string) "op name" "func.func" (Op.name f);
  Alcotest.(check string) "sym" "f" (Op.str_attr_exn f "sym_name");
  let body = Region.entry (Op.region f 0) in
  Alcotest.(check int) "args" 1 (Block.num_args body);
  match Block.ops body with
  | [ inc; ret ] ->
      Alcotest.(check string) "inc" "test.inc" (Op.name inc);
      Alcotest.(check int) "delta" 1 (Op.int_attr_exn inc "delta");
      (* use-list reconstruction: the return really uses inc's result *)
      Alcotest.(check bool) "use chain" true
        (match Op.operands ret with
        | [ v ] -> (
            match Value.defining_op v with
            | Some d -> Op.equal d inc
            | None -> false)
        | _ -> false)
  | ops -> Alcotest.failf "expected 2 body ops, got %d" (List.length ops)

let test_parse_quoted_and_escapes () =
  let src =
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  \"odd op name!\" {s = \"tab\\there \\\"quoted\\\"\"}\n\
    \  func.return\n\
     }"
  in
  let f = Parser.parse_string_exn src in
  let body = Region.entry (Op.region f 0) in
  match Block.ops body with
  | [ odd; _ ] ->
      Alcotest.(check string) "quoted op name" "odd op name!" (Op.name odd);
      Alcotest.(check string) "unescaped string" "tab\there \"quoted\""
        (Op.str_attr_exn odd "s")
  | _ -> Alcotest.fail "expected 2 body ops"

let test_parse_float_attrs () =
  let src =
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  test.f {a = 2., b = -1.5, c = 0.001, d = inf, e = -inf}\n\
    \  func.return\n\
     }"
  in
  let f = Parser.parse_string_exn src in
  let body = Region.entry (Op.region f 0) in
  let op = List.hd (Block.ops body) in
  let fl key =
    match Op.attr op key with Some (A_float x) -> x | _ -> nan
  in
  Alcotest.(check (float 0.)) "a" 2.0 (fl "a");
  Alcotest.(check (float 0.)) "b" (-1.5) (fl "b");
  Alcotest.(check (float 0.)) "c" 0.001 (fl "c");
  Alcotest.(check bool) "inf" true (fl "d" = infinity);
  Alcotest.(check bool) "-inf" true (fl "e" = neg_infinity)

(* ---- diagnostics: exact positions and message prefixes ---- *)

let expect_diag name ~line ~col ~prefix source =
  match Parser.parse_string ~filename:"t.mlir" source with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error d ->
      Alcotest.(check int) (name ^ ": line") line d.Parser.d_line;
      Alcotest.(check int) (name ^ ": col") col d.Parser.d_col;
      let pl = String.length prefix in
      let got =
        if String.length d.Parser.d_message < pl then d.Parser.d_message
        else String.sub d.Parser.d_message 0 pl
      in
      checks (name ^ ": message prefix") prefix got;
      (* the snippet carries a caret under the offending column *)
      Alcotest.(check bool) (name ^ ": caret") true
        (String.contains d.Parser.d_snippet '^')

let test_diag_unbalanced_region () =
  expect_diag "unbalanced" ~line:3 ~col:1
    ~prefix:"unexpected end of input: unbalanced region"
    "func.func {sym_name = \"f\", type = () -> ()} {\n  test.op {\n"

let test_diag_undefined_ssa () =
  expect_diag "undefined ssa" ~line:2 ~col:12
    ~prefix:"undefined SSA name '%nope'"
    "func.func {sym_name = \"f\", type = () -> ()} {\n  test.use(%nope)\n}\n"

let test_diag_type_mismatch () =
  expect_diag "type mismatch" ~line:2 ~col:21
    ~prefix:"type mismatch: 2 results but 1 result types"
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  %a, %b = test.two : i32\n\
     }\n"

let test_diag_bad_affine_expr () =
  expect_diag "bad affine expr" ~line:2 ~col:32
    ~prefix:"bad affine expr: unexpected identifier 'q'"
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  test.m {m = (d0)[] -> ((d0 + q))}\n\
     }\n"

let test_diag_redefinition () =
  expect_diag "redefinition" ~line:3 ~col:3
    ~prefix:"redefinition of SSA name '%a'"
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  %a = test.one : i32\n\
    \  %a = test.one : i32\n\
     }\n"

let test_diag_verifier_mapped () =
  (* verifier failures are mapped back to the offending op's position *)
  expect_diag "isolation" ~line:4 ~col:5
    ~prefix:"verification failed after parse:"
    "func.func {sym_name = \"f\", type = () -> ()} {\n\
    \  %a = test.one : i32\n\
    \  hida.node(%a) {\n\
    \    test.use(%a)\n\
    \  }\n\
     }\n"

(* ---- qcheck: the law holds on random modules ---- *)

let gen_type =
  let open QCheck2.Gen in
  let scalar = oneofl [ F32; F64; I32; I8; I1; Index ] in
  let shaped =
    let* elem = oneofl [ F32; I32; I8 ] in
    let* shape = list_size (int_range 1 3) (int_range 1 9) in
    oneofl [ Memref { shape; elem }; Tensor { shape; elem } ]
  in
  frequency [ (2, scalar); (2, shaped) ]

let gen_string =
  (* deliberately hostile: quotes, backslashes, newlines, unicode bytes *)
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 0 12))

let gen_float =
  QCheck2.Gen.(
    frequency
      [
        (3, float);
        (1, oneofl [ 0.; -0.; 1.5; -2.; 0.001; 1e30; infinity; neg_infinity ]);
      ])

let gen_affine_map =
  let open QCheck2.Gen in
  let* ndims = int_range 0 3 in
  let* nsyms = int_range 0 2 in
  let gen_leaf =
    let dims = List.init ndims Affine.dim and syms = List.init nsyms Affine.sym in
    let consts = [ Affine.const 0; Affine.const 2; Affine.const (-3) ] in
    oneofl (consts @ dims @ syms)
  in
  let gen_expr =
    let* a = gen_leaf in
    let* b = gen_leaf in
    let* k = int_range 1 4 in
    oneofl
      [
        a;
        Affine.Add (a, b);
        Affine.Mul (a, b);
        Affine.Floordiv (a, k);
        Affine.Ceildiv (a, k);
        Affine.Mod (a, k);
      ]
  in
  let* exprs = list_size (int_range 1 3) gen_expr in
  (* raw record, not Affine.make: the printer emits exactly these exprs *)
  return { Affine.num_dims = ndims; num_syms = nsyms; exprs }

let gen_attr =
  let open QCheck2.Gen in
  frequency
    [
      (3, map (fun i -> A_int i) (int_range (-1000) 1000));
      (2, map (fun f -> A_float f) gen_float);
      (2, map (fun s -> A_str s) gen_string);
      (1, map (fun b -> A_bool b) bool);
      (1, return A_unit);
      (1, map (fun l -> A_ints l) (list_size (int_range 0 4) small_int));
      (1, map (fun l -> A_strs l) (list_size (int_range 0 3) gen_string));
      (1, map (fun t -> A_type t) gen_type);
      (1, map (fun m -> A_map m) gen_affine_map);
    ]

let gen_attrs =
  let open QCheck2.Gen in
  (* dotted and non-identifier keys included: the printer quotes the
     latter, and the dict-vs-region lookahead must accept both *)
  let keys = [ "alpha"; "beta"; "delta.dotted"; "weird key" ] in
  let* picks = list_repeat (List.length keys) bool in
  let chosen = List.filteri (fun i _ -> List.nth picks i) keys in
  let* vals = list_repeat (List.length chosen) gen_attr in
  return (List.combine chosen vals)

(* A random op tree: ops pick operands from the enclosing scope, may
   carry results (with or without name hints) and may nest plain or
   isolated regions with block arguments. *)
let gen_module : Ir.op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let op_names = [ "test.a"; "test.b.c"; "weird op name!"; "x.y" ] in
  let rec gen_block ~depth ~scope ~budget =
    if budget <= 0 then return []
    else
      let* nm = oneofl op_names in
      let* attrs = gen_attrs in
      let* operands =
        if scope = [] then return []
        else
          let* k = int_range 0 (min 2 (List.length scope)) in
          let* picks = list_repeat k (oneofl scope) in
          return picks
      in
      let* rtypes = list_size (int_range 0 2) gen_type in
      let* regions =
        if depth >= 2 then return []
        else
          let* with_region = frequency [ (2, return false); (1, return true) ] in
          if not with_region then return []
          else
            let* nargs = int_range 0 2 in
            let* argtys = list_repeat nargs gen_type in
            let blk = Block.create ~args:argtys () in
            let* inner =
              gen_block ~depth:(depth + 1)
                ~scope:(Block.args blk @ scope)
                ~budget:(budget / 2)
            in
            List.iter (Block.append blk) inner;
            return [ Region.create ~blocks:[ blk ] () ]
      in
      let op = Op.create ~operands ~attrs ~regions ~results:rtypes nm in
      (* sometimes give results printable name hints *)
      let* hinted = bool in
      if hinted then
        List.iteri
          (fun i v -> v.v_name_hint <- Some (Printf.sprintf "h%d" i))
          (Op.results op);
      let* rest =
        gen_block ~depth ~scope:(Op.results op @ scope) ~budget:(budget - 1)
      in
      return (op :: rest)
  in
  let* budget = int_range 1 8 in
  let* ops = gen_block ~depth:0 ~scope:[] ~budget in
  let blk = Block.create () in
  List.iter (Block.append blk) ops;
  return (Op.create ~regions:[ Region.create ~blocks:[ blk ] () ] ~results:[]
            "builtin.module")

let qcheck_roundtrip =
  QCheck2.Test.make ~count:250 ~name:"roundtrip law on random modules"
    ~print:(fun m -> Printer.op_to_string m)
    gen_module
    (fun m ->
      let s1 = Printer.op_to_string m in
      match Parser.parse_string ~filename:"<qcheck>" s1 with
      | Error d ->
          QCheck2.Test.fail_reportf "parse failed:@.%s@.on:@.%s"
            (Parser.diag_to_string d) s1
      | Ok op ->
          let s2 = Printer.op_to_string op in
          if s1 <> s2 then
            QCheck2.Test.fail_reportf "not a fixpoint:@.%s@.vs:@.%s" s1 s2
          else true)

(* ---- module_and_func normalization ---- *)

let test_module_and_func () =
  let bare = "func.func {sym_name = \"f\", type = () -> ()} {\n  func.return\n}" in
  (match Parser.module_and_func (Parser.parse_string_exn bare) with
  | Some (m, f) ->
      Alcotest.(check string) "wrapped" "builtin.module" (Op.name m);
      Alcotest.(check string) "func" "f" (Op.str_attr_exn f "sym_name")
  | None -> Alcotest.fail "bare func not normalized");
  match Parser.module_and_func (Parser.parse_string_exn "test.notafunc") with
  | Some _ -> Alcotest.fail "non-func should not normalize"
  | None -> ()

let tests =
  [
    Alcotest.test_case "parse structure and use lists" `Quick
      test_parse_structure;
    Alcotest.test_case "quoted names and escapes" `Quick
      test_parse_quoted_and_escapes;
    Alcotest.test_case "float attributes" `Quick test_parse_float_attrs;
    Alcotest.test_case "diag: unbalanced region" `Quick
      test_diag_unbalanced_region;
    Alcotest.test_case "diag: undefined SSA name" `Quick
      test_diag_undefined_ssa;
    Alcotest.test_case "diag: result type mismatch" `Quick
      test_diag_type_mismatch;
    Alcotest.test_case "diag: bad affine expr" `Quick
      test_diag_bad_affine_expr;
    Alcotest.test_case "diag: SSA redefinition" `Quick test_diag_redefinition;
    Alcotest.test_case "diag: verifier error mapped to source" `Quick
      test_diag_verifier_mapped;
    Alcotest.test_case "module_and_func" `Quick test_module_and_func;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
  @ model_tests @ kernel_tests
