(* Subtree structure sharing: canonical digests, isomorphic-block
   stamping (byte-identity with stamping on/off, SSA renaming round
   trips through hida.text), the namespaced blob store, and the
   persistent backing tier behind Qor_cache. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_core
open Hida_estimator
open Hida_frontend
open Hida_text
open Helpers

(* ---- canonical digests ---- *)

(* add(a,a) and add(a,b) have equal op/attr/type skeletons; only the
   free-value wiring differs.  The first-use [!N] numbering must keep
   them apart even under type-only descriptors. *)
let test_digest_wiring () =
  let t = Nn_builder.create ~name:"wire" ~input_shape:[ 2; 6; 6 ] () in
  let x = Nn_builder.current t in
  let a = Nn_builder.relu t in
  let aa = Nn_builder.add t a a in
  let ab = Nn_builder.add t a x in
  ignore (Nn_builder.finish t);
  let def v = Option.get (Value.defining_op v) in
  let dg v = Subtree.digest ~describe_free:Subtree.describe_type (def v) in
  checkb "add(a,a) <> add(a,x)" (dg aa <> dg ab);
  (* Two structurally identical uses sign equal regardless of ids. *)
  let ab2 = Nn_builder.add t a x in
  Alcotest.(check string) "same wiring, same digest" (dg ab) (dg ab2)

(* Repeated blocks in the zoo really are isomorphic: after construction
   and fusion, resnet18 and mobilenet must both contain duplicate task
   digests (this is what the within-compile stamping tier feeds on). *)
let test_zoo_has_isomorphic_tasks () =
  List.iter
    (fun (name, build) ->
      let _m, f = build () in
      let mgr = Pass.manager () in
      Pass.add mgr Canonicalize.pass;
      Pass.add mgr Construct.pass;
      Pass.add mgr (Fusion.pass ());
      Pass.run mgr f;
      let tasks = Walk.collect f ~pred:Hida_d.is_task in
      let seen = Hashtbl.create 16 in
      let dups = ref 0 in
      List.iter
        (fun t ->
          let dg = Subtree.digest ~describe_free:Subtree.describe_type t in
          if Hashtbl.mem seen dg then incr dups else Hashtbl.replace seen dg ())
        tasks;
      checkb (name ^ " has duplicate task digests") (!dups > 0))
    [
      (* Repeated blocks only survive at full scale: tiny scales shrink
         each stage to distinct channel counts and fusion merges away
         the repeats. *)
      ("resnet18", fun () -> Models.resnet18 ());
      ("mobilenet", fun () -> Models.mobilenet ());
    ]

(* ---- stamping ---- *)

let compile_print ~stamp build =
  let _m, f = build () in
  let opts =
    {
      Driver.default with
      max_parallel_factor = 4;
      stamp_isomorphic = stamp;
      verify_each = true;
    }
  in
  let st = Driver.compile_nn ~opts f in
  let rep = Driver.finish ~device:Device.pynq_z2 st f in
  (Printer.op_to_string f, rep)

(* The correctness bar of the whole layer: stamping must be a pure
   perf optimization — the fully optimized IR is byte-identical with it
   on or off. *)
let test_stamp_byte_identity () =
  List.iter
    (fun (name, build) ->
      let s_on, rep_on = compile_print ~stamp:true build in
      let s_off, rep_off = compile_print ~stamp:false build in
      Alcotest.(check string) (name ^ ": stamped IR is byte-identical") s_off s_on;
      let stamped m = Hida_obs.Metrics.counter m "incr.subtree.stamped" in
      checkb
        (name ^ ": stamping actually happened")
        (stamped rep_on.Driver.metrics > 0);
      checki (name ^ ": off = no stamping") 0 (stamped rep_off.Driver.metrics))
    [
      ("resnet18", fun () -> Models.resnet18 ());
      ("mobilenet", fun () -> Models.mobilenet ());
    ]

(* Stamping must also preserve the network function, not just the
   bytes. *)
let test_stamp_preserves_semantics () =
  checkb "stamped resnet18 preserves semantics"
    (preserves_semantics
       ~build:(fun () -> Models.resnet18 ~scale:0.05 ())
       ~transform:(fun f ->
         ignore
           (Driver.compile_nn
              ~opts:{ Driver.default with max_parallel_factor = 4 }
              f))
       ())

(* qcheck: a model made of two copies of a random shape-preserving block
   (so the second block's lowering is stamped from the first), taken
   through lowering + multi-producer elimination.  The printed module
   must verify, parse back, and hit the print/parse/print fixpoint —
   i.e. the SSA renaming of stamped blocks yields well-formed IR even
   with multi-producer buffers crossing the stamped boundary. *)
type seg_layer = S_conv | S_relu | S_dwconv

let gen_twin_spec : (seg_layer list * bool) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let layer = oneofl [ S_conv; S_relu; S_dwconv ] in
  let* n = int_range 1 3 in
  let* layers = list_size (return n) layer in
  let* with_residual = bool in
  return (layers, with_residual)

let build_twin (layers, with_residual) () =
  let t = Nn_builder.create ~name:"twin" ~input_shape:[ 2; 8; 8 ] () in
  let segment () =
    List.iter
      (fun l ->
        match l with
        | S_conv ->
            ignore
              (Nn_builder.conv t ~out_channels:(Nn_builder.channels t)
                 ~kernel:3 ~stride:1 ~pad:1)
        | S_relu -> ignore (Nn_builder.relu t)
        | S_dwconv -> ignore (Nn_builder.dwconv t ~kernel:3 ~stride:1 ~pad:1))
      layers;
    (* A residual shortcut inside each copy: its buffer gets a second
       producer after lowering, so multi-producer elimination has to
       rewrite ops inside stamped nodes. *)
    if with_residual then begin
      let saved = Nn_builder.current t in
      ignore
        (Nn_builder.conv_relu t ~out_channels:(Nn_builder.channels t)
           ~kernel:3 ~stride:1 ~pad:1);
      ignore (Nn_builder.add t (Nn_builder.current t) saved)
    end
  in
  segment ();
  segment ();
  ignore (Nn_builder.flatten t);
  ignore (Nn_builder.linear t ~out_features:3);
  Nn_builder.finish t

let prop_stamp_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"stamp-then-print round-trips through hida.text"
       ~count:15 gen_twin_spec (fun spec ->
         let _m, f = build_twin spec () in
         let mgr = Pass.manager ~verify_each:true () in
         Pass.add mgr Canonicalize.pass;
         Pass.add mgr Construct.pass;
         Pass.add mgr (Fusion.pass ());
         Pass.add mgr (Lowering.nn_pass ~stamp:true ());
         Pass.add mgr Multi_producer.pass;
         Pass.run mgr f;
         Verifier.verify_exn f;
         let s1 = Printer.op_to_string f in
         match Parser.parse_string ~verify:true ~filename:"twin" s1 with
         | Error d -> Alcotest.failf "reparse failed: %s" (Parser.diag_to_string d)
         | Ok op -> Printer.op_to_string op = s1))

(* ---- blob store ---- *)

let test_blob_store_lru () =
  let st = Blob_store.create ~budget_bytes:2048 () in
  let payload = String.make 200 'x' in
  for i = 1 to 20 do
    Blob_store.add st ~ns:"a" ~key:(Printf.sprintf "k%02d" i) payload
  done;
  let s = Blob_store.stats st in
  checkb "stayed under budget" (s.Blob_store.s_bytes <= 2048);
  checkb "evicted something" (s.Blob_store.s_evictions > 0);
  (* Most-recent entry survives; the very first was evicted. *)
  checkb "recent survives" (Blob_store.find st ~ns:"a" "k20" <> None);
  checkb "oldest evicted" (Blob_store.find st ~ns:"a" "k01" = None);
  (* Namespaces are distinct key spaces. *)
  Blob_store.add st ~ns:"b" ~key:"k20" "other";
  Alcotest.(check (option string))
    "ns isolation" (Some "other")
    (Blob_store.find st ~ns:"b" "k20")

let temp_dir () =
  let d = Filename.temp_file "hida_blob" "" in
  Sys.remove d;
  d

let test_blob_store_persistence () =
  let dir = temp_dir () in
  let st = Blob_store.create () in
  Blob_store.add st ~ns:"qor.factors" ~key:"dse#1" "2,4,8";
  Blob_store.add st ~ns:"artifact" ~key:"abc" "payload";
  (match Blob_store.save st ~dir with
  | Ok n -> checki "saved both" 2 n
  | Error e -> Alcotest.failf "save failed: %s" e);
  let st2 = Blob_store.create () in
  (match Blob_store.load st2 ~dir with
  | Ok n -> checki "loaded both" 2 n
  | Error e -> Alcotest.failf "load failed: %s" e);
  Alcotest.(check (option string))
    "value round-trips" (Some "2,4,8")
    (Blob_store.find st2 ~ns:"qor.factors" "dse#1");
  (* Missing dir loads as empty, corrupt file is an error, not a crash. *)
  (match Blob_store.load (Blob_store.create ()) ~dir:(dir ^ "-nowhere") with
  | Ok n -> checki "missing file = empty" 0 n
  | Error e -> Alcotest.failf "missing file should be Ok 0: %s" e);
  let oc = open_out (Filename.concat dir "blob_store.bin") in
  output_string oc "garbage";
  close_out oc;
  (match Blob_store.load (Blob_store.create ()) ~dir with
  | Ok _ -> Alcotest.fail "corrupt file should be an error"
  | Error _ -> ())

(* ---- the persistent backing tier behind Qor_cache ---- *)

let test_qor_cache_backing () =
  let store = Blob_store.shared () in
  let key = "test-backing#" ^ string_of_int (Hashtbl.hash (Sys.time ())) in
  let c1 = Qor_cache.create () in
  Qor_cache.set_backing c1 (Some store);
  let computed = ref 0 in
  let v1 =
    Qor_cache.memo_float c1 key (fun () ->
        incr computed;
        0.125)
  in
  checkb "computed once" (!computed = 1 && v1 = 0.125);
  (* A different cache instance sharing the store — the cross-process
     shape of [--incr-cache] — must be served without recomputation. *)
  let c2 = Qor_cache.create () in
  Qor_cache.set_backing c2 (Some store);
  let v2 = Qor_cache.memo_float c2 key (fun () -> Alcotest.fail "recomputed") in
  checkb "served from backing" (v2 = 0.125);
  let hits, misses = Qor_cache.subtree_counters c2 in
  checki "backing hit counted" 1 hits;
  checki "no backing misses on c2" 0 misses;
  (* DSE factor tuples round-trip through the store codec, including
     probe-style lookups ([find_factors], the schedule-replay path). *)
  let fkey = key ^ "#factors" in
  Qor_cache.store_factors c1 fkey [| 2; 4; 8 |];
  (match Qor_cache.find_factors c2 fkey with
  | Some f -> checkb "factors round-trip" (f = [| 2; 4; 8 |])
  | None -> Alcotest.fail "factors not served from backing");
  (* [clear] keeps the backing tier. *)
  Qor_cache.clear c2;
  let v3 = Qor_cache.memo_float c2 key (fun () -> Alcotest.fail "recomputed") in
  checkb "backing survives clear" (v3 = 0.125);
  Qor_cache.set_backing c1 None;
  Qor_cache.set_backing c2 None

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* An end-to-end incremental recompile in-process: compile, then clear
   the in-memory cache (simulating a new process) and recompile with
   the same backing store — the driver must report subtree hits and the
   output must be byte-identical. *)
let test_incremental_recompile_reuses () =
  let store = Blob_store.create () in
  let g = Qor_cache.global () in
  Qor_cache.set_backing g (Some store);
  Fun.protect
    ~finally:(fun () ->
      Qor_cache.set_backing g None;
      Qor_cache.clear g)
    (fun () ->
      Qor_cache.clear g;
      let s1, _rep1 =
        compile_print ~stamp:true (fun () -> Models.resnet18 ~scale:0.05 ())
      in
      Qor_cache.clear g;
      let s2, rep2 =
        compile_print ~stamp:true (fun () -> Models.resnet18 ~scale:0.05 ())
      in
      Alcotest.(check string) "incremental output byte-identical" s1 s2;
      let hits =
        Hida_obs.Metrics.counter rep2.Driver.metrics "incr.subtree.hits"
      in
      checkb "subtree hits reported on recompile" (hits > 0);
      checkb "reuse remark emitted"
        (List.exists
           (fun (r : Hida_obs.Remark.t) ->
             r.Hida_obs.Remark.r_severity = Hida_obs.Remark.Analysis
             && contains_sub ~sub:"incremental reuse" r.Hida_obs.Remark.r_msg)
           rep2.Driver.remarks))

let tests =
  [
    Alcotest.test_case "digest distinguishes wiring" `Quick test_digest_wiring;
    Alcotest.test_case "zoo has isomorphic tasks" `Quick
      test_zoo_has_isomorphic_tasks;
    Alcotest.test_case "stamping is byte-identical" `Slow
      test_stamp_byte_identity;
    Alcotest.test_case "stamping preserves semantics" `Slow
      test_stamp_preserves_semantics;
    prop_stamp_roundtrip;
    Alcotest.test_case "blob store LRU" `Quick test_blob_store_lru;
    Alcotest.test_case "blob store persistence" `Quick
      test_blob_store_persistence;
    Alcotest.test_case "qor-cache backing tier" `Quick test_qor_cache_backing;
    Alcotest.test_case "incremental recompile reuses subtrees" `Slow
      test_incremental_recompile_reuses;
  ]
