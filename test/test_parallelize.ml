(* Tests for intensity/connection analysis (§6.5 step 1, Table 4), the
   DSE engine (Alg. 4) and the IA+CA parallelizer (Tables 5/6). *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_core
open Hida_frontend
open Helpers

let lowered_listing1 () =
  let _m, f = Listing1.build () in
  Construct.run f;
  Lowering.lower_memref_func f;
  f

(* ---- DSE engine ---- *)

let test_dse_validity () =
  let dims =
    [|
      { Dse.trip = 32; reduction = false; serial = false };
      { Dse.trip = 16; reduction = false; serial = false };
    |]
  in
  let factors = Dse.search ~dims ~parallel_factor:32 () in
  checki "product equals pf" 32 (Dse.product factors);
  checkb "factors divide trips" (32 mod factors.(0) = 0 && 16 mod factors.(1) = 0)

let test_dse_constraints () =
  let dims =
    [|
      { Dse.trip = 32; reduction = false; serial = false };
      { Dse.trip = 16; reduction = false; serial = false };
    |]
  in
  (* A constraint of 8 on dim 0 demands mutual divisibility. *)
  let constraints = [ [| Some 8; None |] ] in
  let factors = Dse.search ~constraints ~dims ~parallel_factor:4 () in
  checkb "dim-0 factor mutually divisible with 8"
    (8 mod factors.(0) = 0 || factors.(0) mod 8 = 0)

let test_dse_reduction_spill () =
  (* When parallel dims cannot absorb the factor, reduction dims are
     used as spill capacity. *)
  let dims =
    [|
      { Dse.trip = 4; reduction = false; serial = false };
      { Dse.trip = 16; reduction = true; serial = false };
    |]
  in
  let factors = Dse.search ~dims ~parallel_factor:16 () in
  checki "parallel dim saturated" 4 factors.(0);
  checki "reduction absorbs the rest" 4 factors.(1)

let test_dse_serial_never_unrolled () =
  let dims =
    [|
      { Dse.trip = 16; reduction = true; serial = true };
      { Dse.trip = 16; reduction = false; serial = false };
    |]
  in
  let factors = Dse.search ~dims ~parallel_factor:64 () in
  checki "serial dim stays 1" 1 factors.(0)

let test_dse_stats () =
  let stats = { Dse.proposed = 0; valid = 0 } in
  let dims = [| { Dse.trip = 8; reduction = false; serial = false } |] in
  ignore (Dse.search ~stats ~dims ~parallel_factor:8 ());
  checkb "engine explored candidates" (stats.Dse.proposed > 0);
  checkb "some candidates valid" (stats.Dse.valid > 0)

(* ---- Connection analysis (Table 4) ---- *)

let test_connections () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let connections = Intensity.analyze sched in
  checki "two connections (A and B)" 2 (List.length connections);
  (* Find the connection through A: its target reads with stride 2, so
     the source-to-target scaling map must contain 0.5. *)
  let has_half =
    List.exists
      (fun c ->
        Array.exists
          (function Some s -> Float.abs (s -. 0.5) < 1e-9 | None -> false)
          c.Intensity.c_s_to_t_scale)
      connections
  in
  checkb "stride-2 connection has 0.5 scaling" has_half;
  (* The Node1->Node2 connection permutes j and k. *)
  let has_permutation =
    List.exists
      (fun c ->
        Array.exists (function Some i -> i > 0 | None -> false) c.Intensity.c_s_to_t_perm)
      connections
  in
  checkb "permutation maps populated" has_permutation

let test_intensities () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let nodes = List.filter Hida_d.is_node (Block.ops (Hida_d.node_block sched)) in
  let intensities = List.map Intensity.op_intensity nodes in
  let sorted = List.sort compare intensities in
  check (Alcotest.list Alcotest.int) "Table 5 intensities" [ 256; 512; 4096 ] sorted

(* ---- Table 5: parallelization results ---- *)

let factors_by_intensity results =
  List.map
    (fun r -> (r.Parallelize.r_intensity, Array.to_list r.Parallelize.r_factors))
    results
  |> List.sort compare

let test_table5_ia_ca () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let results =
    Parallelize.run_on_schedule ~mode:Parallelize.ia_ca ~max_parallel_factor:32 sched
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.int)))
    "IA+CA unroll factors (Table 5)"
    [ (256, [ 1; 2 ]); (512, [ 4; 1 ]); (4096, [ 4; 8; 1 ]) ]
    (factors_by_intensity results)

let test_table5_parallel_factors () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let results =
    Parallelize.run_on_schedule ~mode:Parallelize.ia_ca ~max_parallel_factor:32 sched
  in
  let pfs =
    List.sort compare (List.map (fun r -> r.Parallelize.r_parallel_factor) results)
  in
  check (Alcotest.list Alcotest.int) "IA parallel factors" [ 2; 4; 32 ] pfs

let test_table5_naive () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let results =
    Parallelize.run_on_schedule ~mode:Parallelize.naive ~max_parallel_factor:32 sched
  in
  (* Naive gives the maximum factor to every node. *)
  List.iter
    (fun r -> checki "naive pf" 32 r.Parallelize.r_parallel_factor)
    results;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.int)))
    "Naive unroll factors (Table 5)"
    [ (256, [ 4; 8 ]); (512, [ 4; 8 ]); (4096, [ 4; 8; 1 ]) ]
    (factors_by_intensity results)

let test_modes_differ () =
  let run mode =
    let f = lowered_listing1 () in
    let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
    factors_by_intensity
      (Parallelize.run_on_schedule ~mode ~max_parallel_factor:32 sched)
  in
  checkb "IA+CA differs from naive" (run Parallelize.ia_ca <> run Parallelize.naive);
  checkb "IA differs from naive" (run Parallelize.ia_only <> run Parallelize.naive)

(* ---- Table 6: array partitioning ---- *)

let partition_of f name =
  let buf =
    Option.get
      (Walk.find f ~pred:(fun op ->
           Hida_d.is_buffer op
           && (Op.result op 0).v_name_hint = Some name))
  in
  (Hida_d.partition_factors buf, Hida_d.bank_count buf)

let test_table6_partitions () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  ignore
    (Parallelize.run_on_schedule ~mode:Parallelize.ia_ca ~max_parallel_factor:32 sched);
  Partition.run f;
  let fa, banks_a = partition_of f "A" in
  check (Alcotest.list Alcotest.int) "A partition (Table 6 IA+CA)" [ 8; 1 ] fa;
  checki "A banks" 8 banks_a;
  let fb, banks_b = partition_of f "B" in
  check (Alcotest.list Alcotest.int) "B partition (Table 6 IA+CA)" [ 1; 8 ] fb;
  checki "B banks" 8 banks_b

let test_naive_partitions_cost_more () =
  let banks_for mode =
    let f = lowered_listing1 () in
    let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
    ignore (Parallelize.run_on_schedule ~mode ~max_parallel_factor:32 sched);
    Partition.run ~ca:mode.Parallelize.ca f;
    List.fold_left
      (fun acc b -> acc + Hida_d.bank_count b)
      0
      (Walk.collect f ~pred:Hida_d.is_buffer)
  in
  checkb "IA+CA uses fewer banks than naive"
    (banks_for Parallelize.ia_ca < banks_for Parallelize.naive)

let test_stochastic_on_listing1 () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let results =
    Parallelize.run_on_schedule ~engine:(`Stochastic 7) ~max_parallel_factor:32
      sched
  in
  Partition.run f;
  Verifier.verify_exn f;
  List.iter
    (fun r ->
      checkb "stochastic factors within parallel factor"
        (Dse.product r.Parallelize.r_factors <= r.Parallelize.r_parallel_factor))
    results;
  checkb "stochastic pipeline preserves semantics"
    (preserves_semantics
       ~build:(fun () -> Listing1.build ())
       ~transform:(fun f ->
         Construct.run f;
         Lowering.lower_memref_func f;
         let s = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
         ignore
           (Parallelize.run_on_schedule ~engine:(`Stochastic 7)
              ~max_parallel_factor:32 s);
         Partition.run f)
       ())

(* ---- Serial loops ---- *)

let test_seidel_not_parallelized () =
  let _m, f = Polybench.k_seidel_2d ~scale:0.2 () in
  ignore
    (Driver.run_memref
       ~opts:{ Driver.default with max_parallel_factor = 64 }
       ~device:Hida_estimator.Device.zu3eg f);
  List.iter
    (fun l -> checki "serial loop not unrolled" 1 (Affine_d.unroll_factor l))
    (Walk.collect f ~pred:Affine_d.is_for)

let test_loop_classes () =
  let _m, f = Polybench.k_2mm ~scale:0.05 () in
  let nests = Affine_d.outermost_loops f in
  let nest = List.hd nests in
  let spine = Intensity.spine_of nest in
  checki "gemm spine depth" 3 (List.length spine);
  let classes = List.map (Intensity.loop_class nest) spine in
  checkb "i parallel" (List.nth classes 0 = `Parallel);
  checkb "j parallel" (List.nth classes 1 = `Parallel);
  checkb "k reduction" (List.nth classes 2 = `Reduction)

let test_stochastic_engine () =
  let dims =
    [|
      { Dse.trip = 32; reduction = false; serial = false };
      { Dse.trip = 16; reduction = false; serial = false };
    |]
  in
  let f = Dse.search_stochastic ~seed:3 ~dims ~parallel_factor:32 () in
  checkb "stochastic result valid"
    (Dse.is_valid ~constraints:[] ~parallel_factor:32 f);
  checki "stochastic reaches full product" 32 (Dse.product f);
  (* Deterministic across runs. *)
  let g = Dse.search_stochastic ~seed:3 ~dims ~parallel_factor:32 () in
  checkb "seeded determinism" (f = g)

(* Regression for the convergence-counting bug: staleness used to count
   rejected (invalid) proposals, so constraint-dense lattices terminated
   before the optimum was reached.  On small lattices the converged
   stochastic engine must match the exhaustive optimum exactly (the
   candidate order is total, so the optimum is unique). *)
let test_stochastic_matches_exhaustive () =
  let configs =
    [
      ([ 32; 16 ], 32, []);
      ([ 16; 8 ], 8, []);
      ([ 4; 16 ], 16, []);
      ([ 32; 16 ], 4, [ [| Some 8; None |] ]);
      ([ 8; 8; 8 ], 16, [ [| Some 2; Some 2; None |] ]);
    ]
  in
  List.iter
    (fun (trips, pf, constraints) ->
      let dims =
        Array.of_list
          (List.map
             (fun t -> { Dse.trip = t; reduction = false; serial = false })
             trips)
      in
      let ex = Dse.search ~constraints ~dims ~parallel_factor:pf () in
      List.iter
        (fun seed ->
          let st =
            Dse.search_stochastic ~constraints ~seed ~patience:2048
              ~max_proposals:50_000 ~dims ~parallel_factor:pf ()
          in
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "seed %d matches exhaustive" seed)
            (Array.to_list ex) (Array.to_list st))
        [ 1; 2; 3; 5; 8; 13 ])
    configs

(* Pins the documented semantics of constraint arrays shorter (or longer)
   than the factor tuple: indices beyond the constraint's length carry no
   divisibility obligation (the permutation map of Table 4 is partial). *)
let test_is_valid_out_of_range () =
  (* Short constraint: index 1 is unconstrained, so any factor goes. *)
  checkb "short constraint leaves deeper levels unconstrained"
    (Dse.is_valid ~constraints:[ [| Some 2 |] ] ~parallel_factor:64 [| 4; 7 |]);
  checkb "short constraint still binds covered levels"
    (not
       (Dse.is_valid ~constraints:[ [| Some 3 |] ] ~parallel_factor:64 [| 4; 7 |]));
  (* Long constraint: entries beyond the factor tuple are ignored. *)
  checkb "long constraint ignores excess entries"
    (Dse.is_valid ~constraints:[ [| Some 2; Some 3; Some 5 |] ] ~parallel_factor:64
       [| 4 |]);
  (* None entries never constrain. *)
  checkb "None entries never constrain"
    (Dse.is_valid ~constraints:[ [| None; None |] ] ~parallel_factor:64 [| 3; 7 |])

(* The O(√n) memoized divisor ladder must agree with the naive definition. *)
let test_divisors_match_naive () =
  let naive n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
  List.iter
    (fun n ->
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "divisors %d" n)
        (naive n) (Dse.divisors n))
    (List.init 128 (fun i -> i + 1) @ [ 360; 720; 997; 1024; 1800 ]);
  check (Alcotest.list Alcotest.int) "divisors 0" [ 1 ] (Dse.divisors 0);
  check (Alcotest.list Alcotest.int) "divisors (-3)" [ 1 ] (Dse.divisors (-3))

(* Level scheduling (parallel DSE): connected nodes must land in
   different levels (their searches are ordered by Alg. 4), and the
   levels must partition the order without reordering. *)
let test_level_schedule () =
  let f = lowered_listing1 () in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let connections = Intensity.analyze sched in
  let order =
    List.filter Hida_d.is_node (Block.ops (Hida_d.node_block sched))
  in
  let levels = Parallelize.level_schedule ~order ~connections in
  checki "levels partition the order" (List.length order)
    (List.length (List.concat levels));
  let level_of n =
    let rec go i = function
      | [] -> -1
      | l :: rest -> if List.exists (Op.equal n) l then i else go (i + 1) rest
    in
    go 0 levels
  in
  List.iter
    (fun (c : Intensity.connection) ->
      checkb "connected nodes in different levels"
        (level_of c.Intensity.c_source <> level_of c.Intensity.c_target))
    connections;
  (* Sequential order is preserved within the concatenation of levels:
     each level is a subsequence of [order]. *)
  let pos n =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if Op.equal x n then i else go (i + 1) rest
    in
    go 0 order
  in
  List.iter
    (fun level ->
      let ps = List.map pos level in
      checkb "each level is a subsequence of the order"
        (List.sort compare ps = ps))
    levels

(* ---- parallel DSE over the work-stealing pool ---- *)

(* Byte-identical output whatever the parallelism: the candidate order
   is total, chunk reductions pick the unique optimum, and the pool's
   results are committed in node order.  The qcheck sweep varies both
   the workload and the jobs count (2/4/8 all exercise stealing; at 8
   the request over-asks the worker budget and gets clamped). *)
let prop_jobs_byte_identical =
  let baselines : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let compile ~jobs name =
    let f = snd ((Polybench.by_name name).Polybench.e_build ()) in
    let rep =
      Driver.run_memref
        ~opts:{ Driver.default with jobs; max_parallel_factor = 64 }
        ~device:Hida_estimator.Device.zu3eg f
    in
    Printer.op_to_string rep.Driver.design
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parallel DSE output byte-identical across jobs"
       ~count:12
       QCheck2.Gen.(
         tup2
           (oneofl [ "2mm"; "3mm"; "atax"; "bicg"; "mvt" ])
           (oneofl [ 1; 2; 4; 8 ]))
       (fun (name, jobs) ->
         let baseline =
           match Hashtbl.find_opt baselines name with
           | Some s -> s
           | None ->
               let s = compile ~jobs:1 name in
               Hashtbl.replace baselines name s;
               s
         in
         String.equal baseline (compile ~jobs name)))

(* When --jobs over-asks the shared pool's worker budget, the effective
   parallelism is clamped and the parallelizer says so in a remark. *)
let test_jobs_clamp_remark () =
  let restore () = Domain_pool.set_max_workers (-1) in
  Fun.protect ~finally:restore (fun () ->
      Domain_pool.set_max_workers 0;
      let _m, f = Polybench.k_2mm ~scale:0.1 () in
      let rep =
        Driver.run_memref
          ~opts:{ Driver.default with jobs = 4 }
          ~device:Hida_estimator.Device.zu3eg f
      in
      let clamp_remarks =
        List.filter
          (fun r ->
            r.Hida_obs.Remark.r_pass = "dataflow-parallelization"
            && r.Hida_obs.Remark.r_severity = Hida_obs.Remark.Analysis
            && contains ~sub:"clamped" r.Hida_obs.Remark.r_msg)
          rep.Driver.remarks
      in
      checkb "clamp remark emitted" (clamp_remarks <> []));
  (* With the budget restored, an in-budget request draws no remark. *)
  let _m, f = Polybench.k_2mm ~scale:0.1 () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with jobs = 2 }
      ~device:Hida_estimator.Device.zu3eg f
  in
  checkb "no clamp remark within budget"
    (not
       (List.exists
          (fun r -> contains ~sub:"clamped" r.Hida_obs.Remark.r_msg)
          rep.Driver.remarks))

let prop_stochastic_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"stochastic DSE always valid, usually optimal"
       ~count:50
       QCheck2.Gen.(
         tup3
           (list_size (int_range 1 3) (oneofl [ 4; 8; 16; 32 ]))
           (oneofl [ 2; 4; 8; 16; 32 ])
           (int_range 1 1000))
       (fun (trips, pf, seed) ->
         let dims =
           Array.of_list
             (List.map
                (fun t -> { Dse.trip = t; reduction = false; serial = false })
                trips)
         in
         let st = Dse.search_stochastic ~seed ~dims ~parallel_factor:pf () in
         let ex = Dse.search ~dims ~parallel_factor:pf () in
         Dse.is_valid ~constraints:[] ~parallel_factor:pf st
         && Dse.product st <= Dse.product ex))

(* Property: DSE results always satisfy validity. *)
let prop_dse_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"DSE always returns valid factors" ~count:100
       QCheck2.Gen.(
         tup3
           (list_size (int_range 1 4) (oneofl [ 4; 6; 8; 12; 16; 32 ]))
           (oneofl [ 1; 2; 4; 8; 16; 32; 64 ])
           (oneofl [ None; Some 2; Some 8 ]))
       (fun (trips, pf, constr) ->
         let dims =
           Array.of_list
             (List.map
                (fun t -> { Dse.trip = t; reduction = false; serial = false })
                trips)
         in
         let constraints =
           match constr with
           | None -> []
           | Some c -> [ Array.make (Array.length dims) (Some c) ]
         in
         let factors = Dse.search ~constraints ~dims ~parallel_factor:pf () in
         Dse.is_valid ~constraints ~parallel_factor:pf factors
         && Array.for_all2 (fun f d -> d.Dse.trip mod f = 0) factors dims))

let tests =
  [
    Alcotest.test_case "DSE validity" `Quick test_dse_validity;
    Alcotest.test_case "DSE constraints" `Quick test_dse_constraints;
    Alcotest.test_case "DSE reduction spill" `Quick test_dse_reduction_spill;
    Alcotest.test_case "DSE serial dims" `Quick test_dse_serial_never_unrolled;
    Alcotest.test_case "DSE statistics" `Quick test_dse_stats;
    Alcotest.test_case "stochastic DSE engine" `Quick test_stochastic_engine;
    Alcotest.test_case "stochastic matches exhaustive" `Quick
      test_stochastic_matches_exhaustive;
    Alcotest.test_case "is_valid out-of-range constraints" `Quick
      test_is_valid_out_of_range;
    Alcotest.test_case "divisors match naive" `Quick test_divisors_match_naive;
    Alcotest.test_case "level schedule" `Quick test_level_schedule;
    Alcotest.test_case "stochastic engine end-to-end" `Quick test_stochastic_on_listing1;
    prop_stochastic_valid;
    Alcotest.test_case "connections (Table 4)" `Quick test_connections;
    Alcotest.test_case "intensities (Table 5)" `Quick test_intensities;
    Alcotest.test_case "IA+CA factors (Table 5)" `Quick test_table5_ia_ca;
    Alcotest.test_case "parallel factors (Table 5)" `Quick test_table5_parallel_factors;
    Alcotest.test_case "naive factors (Table 5)" `Quick test_table5_naive;
    Alcotest.test_case "ablation modes differ" `Quick test_modes_differ;
    Alcotest.test_case "partitions (Table 6)" `Quick test_table6_partitions;
    Alcotest.test_case "naive partitions cost more" `Quick test_naive_partitions_cost_more;
    prop_jobs_byte_identical;
    Alcotest.test_case "jobs clamp remark" `Quick test_jobs_clamp_remark;
    Alcotest.test_case "seidel stays serial" `Quick test_seidel_not_parallelized;
    Alcotest.test_case "loop dependence classes" `Quick test_loop_classes;
    prop_dse_valid;
  ]
