(* Observability tests: span tracer, Chrome JSON export, metrics
   registry, IR statistics, pass-manager instrumentation hooks, and
   remark/metric capture from a real driver compile. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_core
open Hida_frontend
open Hida_obs
open Helpers

(* ---- a minimal JSON parser (no JSON library in the test deps),
   enough to check the Chrome trace export is well-formed ---- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_lit lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char buf s.[!pos]; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              Buffer.add_char buf (Char.chr (code land 0xff));
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          if Char.code c < 0x20 then fail "raw control char in string";
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); J_obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_list [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); J_list (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> parse_lit "true" (J_bool true)
    | Some 'f' -> parse_lit "false" (J_bool false)
    | Some 'n' -> parse_lit "null" J_null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name j =
  match obj_field name j with Some (J_str s) -> Some s | _ -> None

(* ---- tracer ---- *)

let test_span_nesting () =
  let t = Trace.create () in
  let r =
    Trace.with_span t "pipeline" (fun () ->
        Trace.with_span t "pass-a" (fun () -> ());
        Trace.with_span t "pass-b" (fun () ->
            Trace.with_span t "dse" (fun () -> ()));
        17)
  in
  checki "with_span returns callback result" 17 r;
  let roots = Trace.roots t in
  checki "one root span" 1 (List.length roots);
  let root = List.hd roots in
  check Alcotest.string "root name" "pipeline" (Trace.name root);
  let kids = Trace.children root in
  check
    Alcotest.(list string)
    "children in chronological order" [ "pass-a"; "pass-b" ]
    (List.map Trace.name kids);
  let pass_b = List.nth kids 1 in
  check
    Alcotest.(list string)
    "nested child" [ "dse" ]
    (List.map Trace.name (Trace.children pass_b));
  checkb "find locates nested span"
    (match Trace.find t "dse" with
    | Some sp -> Trace.name sp = "dse"
    | None -> false);
  (* timing sanity: parent covers its children *)
  List.iter
    (fun kid -> checkb "child fits in parent"
        (Trace.duration t kid <= Trace.duration t root +. 1e-9))
    kids;
  checkb "total covers root" (Trace.total_seconds t >= Trace.duration t root)

let test_end_span_closes_deeper () =
  let t = Trace.create () in
  let outer = Trace.begin_span t "outer" in
  let _inner = Trace.begin_span t "inner" in
  (* Closing [outer] must defensively close the still-open [inner]. *)
  Trace.end_span t outer;
  let fresh = Trace.begin_span t "fresh" in
  Trace.end_span t fresh;
  check
    Alcotest.(list string)
    "fresh span is a new root, not a child of inner" [ "outer"; "fresh" ]
    (List.map Trace.name (Trace.roots t))

let test_chrome_json () =
  let t = Trace.create () in
  Trace.with_span t "quoted \"name\" with \\ and \n newline" (fun () ->
      Trace.with_span t ~cat:"dse" "inner" (fun () -> ());
      Trace.instant t "milestone");
  let json = parse_json (Trace.to_chrome_json t) in
  let events =
    match obj_field "traceEvents" json with
    | Some (J_list evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ph ev = match str_field "ph" ev with Some p -> p | None -> "?" in
  List.iter
    (fun ev ->
      checkb "known phase" (List.mem (ph ev) [ "X"; "i"; "M" ]);
      checkb "has a name" (str_field "name" ev <> None))
    events;
  let xs = List.filter (fun ev -> ph ev = "X") events in
  checki "one X event per span" 2 (List.length xs);
  checki "one i event per instant" 1
    (List.length (List.filter (fun ev -> ph ev = "i") events));
  checkb "escaped name round-trips"
    (List.exists
       (fun ev ->
         str_field "name" ev = Some "quoted \"name\" with \\ and \n newline")
       xs);
  List.iter
    (fun ev ->
      checkb "X event has numeric ts and dur"
        (match (obj_field "ts" ev, obj_field "dur" ev) with
        | Some (J_num ts), Some (J_num dur) -> ts >= 0. && dur >= 0.
        | _ -> false))
    xs

let test_write_chrome_file () =
  let t = Trace.create () in
  Trace.with_span t "root" (fun () -> ());
  let path = Filename.temp_file "hida-test-trace-" ".json" in
  Trace.write_chrome_file t path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  checkb "file parses as JSON"
    (match parse_json contents with J_obj _ -> true | _ -> false);
  checkb "unwritable path raises Sys_error"
    (try
       Trace.write_chrome_file t "/nonexistent-dir/trace.json";
       false
     with Sys_error _ -> true)

(* ---- metrics ---- *)

let test_metrics () =
  let m = Metrics.create () in
  checki "unknown counter reads 0" 0 (Metrics.counter m "nope");
  Metrics.add m "b.ops" 3;
  Metrics.incr m "b.ops";
  Metrics.incr m "a.ops";
  checki "add + incr accumulate" 4 (Metrics.counter m "b.ops");
  check
    Alcotest.(list (pair string int))
    "counters sorted by name"
    [ ("a.ops", 1); ("b.ops", 4) ]
    (Metrics.counters m);
  checkb "unknown gauge is None" (Metrics.gauge m "t" = None);
  Metrics.set_gauge m "t" 1.5;
  Metrics.set_gauge m "t" 2.5;
  checkb "gauge is last-write-wins" (Metrics.gauge m "t" = Some 2.5);
  let s = Metrics.to_string m in
  checkb "to_string mentions counters and gauges"
    (let contains sub =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains "a.ops" && contains "b.ops" && contains "t")

(* ---- IR stats across a synthetic pass ---- *)

let test_ir_stats_synthetic_pass () =
  let _m, f = Listing1.build () in
  let before = Ir_stats.capture f in
  checkb "listing1 has ops and loops" (before.Ir_stats.ops > 0 && before.Ir_stats.loops > 0);
  let deltas = ref [] in
  let mgr = Pass.manager ~verify_each:false () in
  Pass.add mgr
    (Pass.make ~name:"synthetic-add-buffer" (fun root ->
         let blk = List.hd (Region.blocks (Op.region root 0)) in
         Block.prepend blk (Hida_d.buffer_op ~shape:[ 4 ] ~elem:F32 ())));
  let snap = ref Ir_stats.zero in
  Pass.on_before_pass mgr (fun _pass root -> snap := Ir_stats.capture root);
  Pass.on_after_pass mgr (fun pass root _stats ->
      deltas :=
        {
          Ir_stats.pd_pass = pass.Pass.name;
          pd_before = !snap;
          pd_after = Ir_stats.capture root;
        }
        :: !deltas);
  Pass.run mgr f;
  match !deltas with
  | [ pd ] ->
      let d = Ir_stats.delta pd in
      checki "one buffer created" 1 d.Ir_stats.buffers;
      checki "one op created" 1 d.Ir_stats.ops;
      checki "no loops created" 0 d.Ir_stats.loops;
      checkb "delta_to_string mentions buffers"
        (let s = Ir_stats.delta_to_string pd in
         String.length s > 0)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 delta, got %d" (List.length l))

(* ---- pass-manager instrumentation ---- *)

let test_manager_stats_per_run () =
  let _m, f = Listing1.build () in
  let mgr = Pass.manager ~verify_each:true () in
  Pass.add mgr (Pass.make ~name:"nop-1" (fun _ -> ()));
  Pass.add mgr (Pass.make ~name:"nop-2" (fun _ -> ()));
  Pass.run mgr f;
  checki "first run: one stat per pass" 2 (List.length (Pass.timing mgr));
  Pass.run mgr f;
  (* Stats are per-run: a second run must not accumulate onto the first. *)
  checki "second run: still one stat per pass" 2 (List.length (Pass.timing mgr));
  check
    Alcotest.(list string)
    "stats in execution order" [ "nop-1"; "nop-2" ]
    (List.map (fun s -> s.Pass.pass_name) (Pass.timing mgr));
  List.iter
    (fun s ->
      checkb "verify time recorded separately"
        (s.Pass.seconds >= 0. && s.Pass.verify_seconds >= 0.))
    (Pass.timing mgr);
  checkb "totals are consistent"
    (Pass.total_seconds mgr >= Pass.total_verify_seconds mgr)

let test_manager_hooks_order () =
  let _m, f = Listing1.build () in
  let mgr = Pass.manager ~verify_each:false () in
  let log = ref [] in
  Pass.add mgr (Pass.make ~name:"a" (fun _ -> log := "run:a" :: !log));
  Pass.add mgr (Pass.make ~name:"b" (fun _ -> log := "run:b" :: !log));
  Pass.on_before_pass mgr (fun p _ -> log := ("before:" ^ p.Pass.name) :: !log);
  Pass.on_after_pass mgr (fun p _ _ -> log := ("after:" ^ p.Pass.name) :: !log);
  Pass.run mgr f;
  check
    Alcotest.(list string)
    "hooks wrap each pass in order"
    [ "before:a"; "run:a"; "after:a"; "before:b"; "run:b"; "after:b" ]
    (List.rev !log)

let test_manager_verify_off_means_zero () =
  let _m, f = Listing1.build () in
  let mgr = Pass.manager ~verify_each:false () in
  Pass.add mgr (Pass.make ~name:"nop" (fun _ -> ()));
  Pass.run mgr f;
  checkb "verify_seconds is 0 when verification is off"
    (List.for_all (fun s -> s.Pass.verify_seconds = 0.) (Pass.timing mgr))

(* ---- ambient scope ---- *)

let test_scope_noop_without_install () =
  (* All reporting helpers must be harmless with no scope installed. *)
  Scope.count "x" 1;
  Scope.gauge "y" 2.0;
  Scope.instant "z";
  Scope.remark ~pass:"test" Remark.Remark "ignored %d" 42;
  checki "span still runs its callback" 7 (Scope.span "s" (fun () -> 7));
  checkb "no ambient scope" (Scope.current () = None)

let test_scope_captures () =
  let sc = Scope.create () in
  Scope.with_scope sc (fun () ->
      Scope.count "fusion.tasks_fused" 2;
      Scope.count "fusion.tasks_fused" 1;
      Scope.gauge "compile.seconds" 0.5;
      Scope.span ~cat:"pass" "some-pass" (fun () -> Scope.instant "tick");
      Scope.remark ~pass:"fusion" Remark.Remark "fused %s" "conv+relu";
      Scope.remark ~pass:"fusion" Remark.Missed "kept %s apart" "pool");
  checkb "scope uninstalled afterwards" (Scope.current () = None);
  checki "counts accumulate" 3
    (Metrics.counter (Scope.metrics sc) "fusion.tasks_fused");
  checkb "gauge captured"
    (Metrics.gauge (Scope.metrics sc) "compile.seconds" = Some 0.5);
  checkb "span captured"
    (Trace.find (Scope.trace sc) "some-pass" <> None);
  match Scope.remarks sc with
  | [ r1; r2 ] ->
      checkb "remarks in emission order"
        (r1.Remark.r_severity = Remark.Remark
        && r2.Remark.r_severity = Remark.Missed);
      check Alcotest.string "formatted message" "fused conv+relu"
        r1.Remark.r_msg
  | l -> Alcotest.fail (Printf.sprintf "expected 2 remarks, got %d" (List.length l))

(* ---- end-to-end: a real driver compile carries obs data ---- *)

let test_driver_report_observability () =
  let _m, f = Polybench.k_2mm ~scale:0.1 () in
  let rep = Driver.run_memref ~device:Hida_estimator.Device.zu3eg f in
  (* trace: one root pipeline span whose children are the passes *)
  let tr = rep.Driver.trace in
  checkb "pipeline root span exists" (Trace.find tr "hida-opt" <> None);
  let pass_spans =
    match Trace.find tr "hida-opt" with
    | Some root -> List.map Trace.name (Trace.children root)
    | None -> []
  in
  checki "one pass span per timed pass"
    (List.length rep.Driver.pass_timing)
    (List.length pass_spans);
  (* metrics: several distinct counters, incl. per-pass bookkeeping *)
  let counters = Metrics.counters rep.Driver.metrics in
  checkb "at least 5 distinct counters" (List.length counters >= 5);
  checki "pass.runs matches the pipeline length"
    (List.length rep.Driver.pass_timing)
    (Metrics.counter rep.Driver.metrics "pass.runs");
  checkb "ops visited counted"
    (Metrics.counter rep.Driver.metrics "ir.ops_visited" > 0);
  (* per-pass IR deltas: construction must create dataflow structure *)
  checki "one delta per pass"
    (List.length rep.Driver.pass_timing)
    (List.length rep.Driver.pass_deltas);
  checkb "construction creates tasks"
    (List.exists
       (fun pd ->
         let d = Ir_stats.delta pd in
         d.Ir_stats.tasks > 0 || d.Ir_stats.nodes > 0)
       rep.Driver.pass_deltas);
  (* remarks from the real pipeline *)
  checkb "pipeline emitted remarks" (rep.Driver.remarks <> []);
  checkb "parallelization reported"
    (List.exists
       (fun r -> r.Remark.r_pass = "dataflow-parallelization")
       rep.Driver.remarks)

(* ---- histograms ---- *)

let test_histogram_buckets () =
  checki "v=0 -> bucket 0" 0 (Histogram.bucket_index 0);
  checki "v=1 -> bucket 0" 0 (Histogram.bucket_index 1);
  checki "v=2 -> bucket 1" 1 (Histogram.bucket_index 2);
  checki "v=3 -> bucket 2" 2 (Histogram.bucket_index 3);
  checki "v=4 -> bucket 2" 2 (Histogram.bucket_index 4);
  checki "v=5 -> bucket 3" 3 (Histogram.bucket_index 5);
  checki "v=1024 -> bucket 10" 10 (Histogram.bucket_index 1024);
  checki "v=1025 -> bucket 11" 11 (Histogram.bucket_index 1025);
  checki "bucket 0 upper" 1 (Histogram.bucket_upper 0);
  checki "bucket 1 upper" 2 (Histogram.bucket_upper 1);
  checki "bucket 10 upper" 1024 (Histogram.bucket_upper 10);
  (* each bucket's bound is in its own bucket (inclusive upper) *)
  for i = 0 to 20 do
    checki "upper bound lands in its bucket" i
      (Histogram.bucket_index (Histogram.bucket_upper i))
  done

let test_histogram_percentiles () =
  let h = Histogram.create () in
  checki "empty percentile" 0 (Histogram.percentile h 50.);
  checki "empty min" 0 (Histogram.min_value h);
  (* Powers of two sit exactly on bucket bounds, so percentiles are
     exact: 11 samples 1,2,4,...,1024. *)
  for i = 0 to 10 do
    Histogram.record h (1 lsl i)
  done;
  checki "count" 11 (Histogram.count h);
  checki "sum" 2047 (Histogram.sum h);
  checki "min exact" 1 (Histogram.min_value h);
  checki "max exact" 1024 (Histogram.max_value h);
  checki "p50 = 6th smallest" 32 (Histogram.percentile h 50.);
  checki "p100 = max" 1024 (Histogram.percentile h 100.);
  checki "p1 = 1st smallest" 1 (Histogram.percentile h 1.);
  checki "p99 = 11th smallest" 1024 (Histogram.percentile h 99.);
  (* negative samples clamp to 0 *)
  let h2 = Histogram.create () in
  Histogram.record h2 (-5);
  checki "negative clamps to 0" 0 (Histogram.max_value h2);
  (* merge adds buckets, count, sum and extrema *)
  Histogram.merge_into ~dst:h2 h;
  checki "merged count" 12 (Histogram.count h2);
  checki "merged sum" 2047 (Histogram.sum h2);
  checki "merged max" 1024 (Histogram.max_value h2);
  checki "merged min" 0 (Histogram.min_value h2)

(* ---- domain-safe tracing ---- *)

let n_domains = 4
let spans_per_domain = 50

let test_trace_multidomain () =
  let t = Trace.create () in
  Trace.with_span t "main-work" (fun () -> ());
  let worker d () =
    for s = 0 to spans_per_domain - 1 do
      Trace.with_span t
        (Printf.sprintf "d%d-s%d" d s)
        (fun () -> if s mod 10 = 0 then Trace.instant t "tick")
    done
  in
  let domains = Array.init n_domains (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join domains;
  checki "one lane per domain plus main" (n_domains + 1) (Trace.lane_count t);
  (* main-lane accessors see only the main lane *)
  check
    Alcotest.(list string)
    "main roots untouched" [ "main-work" ]
    (List.map Trace.name (Trace.roots t));
  (* every worker lane holds its own M root spans *)
  let lanes = Trace.lanes t in
  checki "lanes listed" (n_domains + 1) (List.length lanes);
  List.iteri
    (fun i (lname, roots) ->
      if i = 0 then check Alcotest.string "first lane is main" "main" lname
      else checki "worker lane has M roots" spans_per_domain (List.length roots))
    lanes;
  (* find crosses lanes *)
  checkb "find locates a worker span" (Trace.find t "d2-s17" <> None);
  (* merged chrome export is well-formed and complete *)
  let json = parse_json (Trace.to_chrome_json t) in
  let events =
    match obj_field "traceEvents" json with
    | Some (J_list evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ph ev = match str_field "ph" ev with Some p -> p | None -> "?" in
  let xs = List.filter (fun ev -> ph ev = "X") events in
  checki "one X event per span across all lanes"
    (1 + (n_domains * spans_per_domain))
    (List.length xs);
  checki "one i event per instant" (n_domains * 5)
    (List.length (List.filter (fun ev -> ph ev = "i") events));
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun ev ->
           match obj_field "tid" ev with
           | Some (J_num n) when ph ev = "X" -> Some (int_of_float n)
           | _ -> None)
         events)
  in
  checki "X events span one tid per lane" (n_domains + 1) (List.length tids);
  checki "one thread_name metadata per lane" (n_domains + 1)
    (List.length
       (List.filter
          (fun ev -> ph ev = "M" && str_field "name" ev = Some "thread_name")
          events))

let test_metrics_multidomain () =
  let m = Metrics.create () in
  let reps = 1000 in
  let worker () =
    for i = 1 to reps do
      Metrics.incr m "shared.counter";
      Metrics.add m "shared.sum" 2;
      Metrics.observe m "shared.hist" (1 lsl (i mod 8))
    done
  in
  let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let writers = n_domains + 1 in
  checki "concurrent incr loses nothing" (writers * reps)
    (Metrics.counter m "shared.counter");
  checki "concurrent add loses nothing" (writers * reps * 2)
    (Metrics.counter m "shared.sum");
  (match Metrics.histogram m "shared.hist" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      checki "concurrent observe loses nothing" (writers * reps)
        (Histogram.count h);
      checki "histogram max" 128 (Histogram.max_value h));
  (* the JSON snapshot parses with the minimal parser *)
  let j = parse_json (Metrics.to_json m) in
  checkb "to_json has counters/gauges/histograms"
    (obj_field "counters" j <> None
    && obj_field "gauges" j <> None
    && obj_field "histograms" j <> None);
  match obj_field "histograms" j with
  | Some (J_obj [ ("shared.hist", J_obj fields) ]) ->
      checkb "histogram json carries count and p99"
        (List.mem_assoc "count" fields && List.mem_assoc "p99" fields)
  | _ -> Alcotest.fail "histogram entry missing from json"

let test_leaked_span_flagged () =
  let t = Trace.create () in
  let outer = Trace.begin_span t "outer" in
  let _inner = Trace.begin_span t "inner" in
  Trace.end_span t outer;
  let instants = Trace.instants t in
  checkb "leak recorded as an instant event"
    (List.exists
       (fun (_, name, cat) -> name = "leaked span: inner" && cat = "obs")
       instants);
  (* the leak instant survives into the chrome export *)
  let json = parse_json (Trace.to_chrome_json t) in
  let events =
    match obj_field "traceEvents" json with
    | Some (J_list evs) -> evs
    | _ -> []
  in
  checkb "leak instant exported"
    (List.exists (fun ev -> str_field "name" ev = Some "leaked span: inner") events)

let test_complete_span () =
  let t = Trace.create () in
  Trace.with_span t "parent" (fun () ->
      let now = Trace.now t in
      Trace.complete t "retro" ~start:(now -. 0.002) ~stop:(now -. 0.001));
  match Trace.find t "parent" with
  | None -> Alcotest.fail "parent missing"
  | Some p -> (
      match Trace.children p with
      | [ retro ] ->
          check Alcotest.string "retro child name" "retro" (Trace.name retro);
          checkb "retro duration is the measured interval"
            (abs_float (Trace.duration t retro -. 0.001) < 1e-6)
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected 1 child, got %d" (List.length l)))

(* ---- qor-cache contention accounting ---- *)

let test_qor_cache_contention () =
  let open Hida_estimator in
  let cache = Qor_cache.create () in
  let reps = 500 in
  let worker d () =
    for i = 0 to reps - 1 do
      (* half shared keys (hits after first compute), half private *)
      let key =
        if i mod 2 = 0 then Printf.sprintf "shared-%d" (i mod 10)
        else Printf.sprintf "d%d-%d" d i
      in
      ignore (Qor_cache.memo_float cache key (fun () -> float_of_int i))
    done
  in
  let domains = Array.init n_domains (fun d -> Domain.spawn (worker d)) in
  worker (-1) ();
  Array.iter Domain.join domains;
  let writers = n_domains + 1 in
  let hits, misses = Qor_cache.counters cache in
  (* every memo_float does exactly one counted lookup *)
  checki "lookups all accounted" (writers * reps) (hits + misses);
  let per = Qor_cache.per_domain cache in
  checkb "at least the spawned domains have records"
    (List.length per >= 2);
  checki "per-domain hits sum to the total" hits
    (List.fold_left (fun a d -> a + d.Qor_cache.ds_hits) 0 per);
  checki "per-domain misses sum to the total" misses
    (List.fold_left (fun a d -> a + d.Qor_cache.ds_misses) 0 per);
  let c = Qor_cache.contention cache in
  checki "acquires sum over domains" c.Qor_cache.lc_acquires
    (List.fold_left (fun a d -> a + d.Qor_cache.ds_acquires) 0 per);
  checkb "blocked acquisitions never exceed acquisitions"
    (c.Qor_cache.lc_blocked <= c.Qor_cache.lc_acquires);
  checkb "wait histogram count matches blocked count"
    (Histogram.count (Qor_cache.wait_histogram cache) = c.Qor_cache.lc_blocked);
  (* a store and a lookup per miss, at minimum *)
  checkb "acquires cover lookups"
    (c.Qor_cache.lc_acquires >= writers * reps);
  Qor_cache.clear cache;
  let c0 = Qor_cache.contention cache in
  checki "clear resets contention" 0 c0.Qor_cache.lc_acquires;
  checki "clear resets the wait histogram" 0
    (Histogram.count (Qor_cache.wait_histogram cache))

(* ---- parallel profiled compile stays byte-identical ---- *)

let test_profiled_parallel_compile_identical () =
  let open Hida_estimator in
  let compile ~jobs ~profile =
    Qor_cache.clear (Qor_cache.global ());
    let _m, f = Polybench.k_3mm ~scale:0.1 () in
    let opts = { Driver.default with jobs; profile } in
    let rep = Driver.run_memref ~opts ~device:Device.zu3eg f in
    (Printer.op_to_string rep.Driver.design, rep)
  in
  let ir_serial, _ = compile ~jobs:1 ~profile:false in
  let ir_par, rep = compile ~jobs:2 ~profile:true in
  check Alcotest.string "profiled parallel IR is byte-identical" ir_serial ir_par;
  let m = rep.Driver.metrics in
  checkb "lock acquisitions recorded"
    (Metrics.counter m "qor.cache.lock_acquires" > 0);
  checkb "candidate-eval histogram recorded"
    (match Metrics.histogram m "dse.candidate_eval_ns" with
    | Some h -> Histogram.count h > 0
    | None -> false);
  checkb "node-search histogram recorded"
    (Metrics.histogram m "dse.node_search_ns" <> None);
  (* 3mm's first level has two independent nodes, so the pool engaged
     and accounted its wall time *)
  checkb "pool wall time recorded"
    (Metrics.counter m "parallelize.pool.wall_ns" > 0);
  checkb "pool utilization gauge recorded"
    (match Metrics.gauge m "parallelize.pool.utilization" with
    | Some u -> u > 0. && u <= 1.
    | None -> false);
  (* detailed mode put per-candidate spans on some lane *)
  checkb "per-candidate spans traced"
    (Trace.find rep.Driver.trace "candidate" <> None)

let tests =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "end_span closes deeper spans" `Quick
      test_end_span_closes_deeper;
    Alcotest.test_case "chrome json well-formed" `Quick test_chrome_json;
    Alcotest.test_case "chrome file write + unwritable path" `Quick
      test_write_chrome_file;
    Alcotest.test_case "metrics counters and gauges" `Quick test_metrics;
    Alcotest.test_case "ir-stats delta across a synthetic pass" `Quick
      test_ir_stats_synthetic_pass;
    Alcotest.test_case "manager stats are per-run" `Quick
      test_manager_stats_per_run;
    Alcotest.test_case "manager hooks wrap passes in order" `Quick
      test_manager_hooks_order;
    Alcotest.test_case "verify off means zero verify time" `Quick
      test_manager_verify_off_means_zero;
    Alcotest.test_case "scope helpers no-op without scope" `Quick
      test_scope_noop_without_install;
    Alcotest.test_case "scope captures spans, counts and remarks" `Quick
      test_scope_captures;
    Alcotest.test_case "driver report carries trace/metrics/remarks" `Quick
      test_driver_report_observability;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram exact percentiles and merge" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "multi-domain tracing merges one lane per domain"
      `Quick test_trace_multidomain;
    Alcotest.test_case "multi-domain metrics lose no updates" `Quick
      test_metrics_multidomain;
    Alcotest.test_case "leaked span flagged with an instant" `Quick
      test_leaked_span_flagged;
    Alcotest.test_case "complete records a retroactive span" `Quick
      test_complete_span;
    Alcotest.test_case "qor-cache contention accounting is exact" `Quick
      test_qor_cache_contention;
    Alcotest.test_case "profiled parallel compile is byte-identical" `Quick
      test_profiled_parallel_compile_identical;
  ]
