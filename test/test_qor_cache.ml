(* Tests for the memoized QoR estimation layer: content-addressed hits
   must be indistinguishable from fresh estimation, the signature memo
   must honour explicit invalidation, and the level-parallel DSE
   (--jobs N) must produce byte-identical designs to the sequential
   run on every bundled workload. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_estimator
open Hida_core
open Hida_frontend
open Helpers

let dev = Device.zu3eg

(* ---- Memoized vs fresh estimates ---- *)

(* Over random op trees, serving an estimate from the cache must return
   exactly the fresh value — both on the populating (miss) call and on
   the subsequent (hit) call. *)
let prop_memoized_equals_fresh =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"memoized estimate equals fresh" ~count:100
       Test_text.gen_module (fun op ->
         let fresh = Qor.estimate_node_or_nested_fresh dev ~bindings:[] op in
         let cache = Qor_cache.create () in
         let miss = Qor_cache.estimate_node cache dev op in
         let hit = Qor_cache.estimate_node cache dev op in
         let hits, misses = Qor_cache.counters cache in
         fresh = miss && fresh = hit && hits = 1 && misses = 1))

let test_counters () =
  let _m, f = Polybench.k_2mm ~scale:0.05 () in
  let cache = Qor_cache.create () in
  let nest = List.hd (Affine_d.outermost_loops f) in
  ignore (Qor_cache.estimate_node cache dev nest);
  let h0, m0 = Qor_cache.counters cache in
  checki "first estimate misses" 0 h0;
  checki "one miss recorded" 1 m0;
  ignore (Qor_cache.estimate_node cache dev nest);
  let h1, m1 = Qor_cache.counters cache in
  checki "second estimate hits" 1 h1;
  checki "no new miss" 1 m1;
  checkb "cache holds one entry" (Qor_cache.size cache = 1);
  Qor_cache.clear cache;
  checki "clear empties the cache" 0 (Qor_cache.size cache)

(* The signature memo is keyed by op identity and only revalidated by
   {!Qor_cache.invalidate_signatures}: a mutation without invalidation
   serves the stale signature (this is exactly why the driver calls it
   after every pass), and invalidation picks up the new attributes. *)
let test_signature_invalidation () =
  let _m, f = Polybench.k_2mm ~scale:0.05 () in
  let cache = Qor_cache.create () in
  let nest = List.hd (Affine_d.outermost_loops f) in
  let s0 = Qor_cache.signature cache nest in
  Op.set_attr nest "upper" (A_int 123456);
  let stale = Qor_cache.signature cache nest in
  checkb "mutation without invalidation is stale" (String.equal s0 stale);
  Qor_cache.invalidate_signatures cache;
  let s1 = Qor_cache.signature cache nest in
  checkb "invalidation observes the mutation" (not (String.equal s0 s1))

(* Two structurally identical nodes under different enclosing trip
   counts must sign differently: the estimator's trip counts cross the
   region boundary (the hierarchy regression behind this test computed
   steps=2 estimates from a steps=8 cache). *)
let test_signature_captures_enclosing_trips () =
  let build steps =
    let open Loop_dsl in
    let ctx, args = kernel ~name:"k" ~arrays:[ ("x", [ 16 ]) ] in
    let x = match args with [ x ] -> x | _ -> assert false in
    for1 ctx.bld ~n:steps (fun bl _t ->
        for1 bl ~n:16 (fun bl2 i ->
            let v = load bl2 x [ i ] in
            store bl2 v x [ i ]));
    let _m, f = finish ctx in
    (* The inner loop is identical in both builds; only the enclosing
       loop's trip count differs. *)
    List.hd (Affine_d.outermost_loops (List.hd (Affine_d.outermost_loops f)))
  in
  let cache = Qor_cache.create () in
  let s2 = Qor_cache.signature cache (build 2) in
  let s8 = Qor_cache.signature cache (build 8) in
  checkb "enclosing trip count is part of the signature"
    (not (String.equal s2 s8))

(* ---- --jobs determinism ---- *)

(* The level-scheduled parallel DSE must be a pure latency optimization:
   for every bundled workload the printed design with [jobs = 4] is
   byte-identical to the sequential one. *)
let test_jobs_determinism () =
  let print_memref ~jobs build =
    let f = build () in
    let rep =
      Driver.run_memref
        ~opts:{ Driver.default with jobs }
        ~device:Device.zu3eg f
    in
    Printer.op_to_string rep.Driver.design
  in
  let print_nn ~jobs build =
    let f = build () in
    let rep =
      Driver.run_nn ~opts:{ Driver.default with jobs } ~device:Device.vu9p_slr f
    in
    Printer.op_to_string rep.Driver.design
  in
  List.iter
    (fun (e : Polybench.entry) ->
      let build () = snd (e.Polybench.e_build ()) in
      checkb
        (Printf.sprintf "%s: jobs=4 identical to jobs=1" e.Polybench.e_name)
        (String.equal (print_memref ~jobs:1 build) (print_memref ~jobs:4 build)))
    Polybench.all;
  List.iter
    (fun (e : Polybench_extra.entry) ->
      let build () = snd (e.Polybench_extra.e_build ()) in
      checkb
        (Printf.sprintf "%s: jobs=4 identical to jobs=1"
           e.Polybench_extra.e_name)
        (String.equal (print_memref ~jobs:1 build) (print_memref ~jobs:4 build)))
    Polybench_extra.all;
  List.iter
    (fun (e : Models.entry) ->
      let build () = snd (e.Models.e_build ()) in
      checkb
        (Printf.sprintf "%s: jobs=4 identical to jobs=1" e.Models.e_name)
        (String.equal (print_nn ~jobs:1 build) (print_nn ~jobs:4 build)))
    Models.all

(* ---- Entry budget / LRU eviction ---- *)

(* Long-running processes (the compile server) bound the cache with
   [set_entry_limit]: crossing the limit drops the least-recently-used
   quarter, recently touched entries survive, and the eviction counter
   feeds the [qor.cache.evictions] metric. *)
let test_entry_limit_eviction () =
  let cache = Qor_cache.create () in
  Qor_cache.set_entry_limit cache 16;
  checki "limit readable" 16 (Qor_cache.entry_limit cache);
  for i = 1 to 32 do
    ignore
      (Qor_cache.memo_float cache
         (Printf.sprintf "k%d" i)
         (fun () -> float_of_int i))
  done;
  checkb "size stays within the limit" (Qor_cache.size cache <= 16);
  checkb "evictions counted" (Qor_cache.evictions cache > 0);
  (* The most recently stored entry survives the sweep... *)
  let h0, _ = Qor_cache.counters cache in
  ignore (Qor_cache.memo_float cache "k32" (fun () -> nan));
  let h1, _ = Qor_cache.counters cache in
  checki "most-recent entry still hits" (h0 + 1) h1;
  (* ...while the oldest was dropped and gets recomputed. *)
  let v = Qor_cache.memo_float cache "k1" (fun () -> 123.) in
  checkb "oldest entry was evicted (recomputed)" (v = 123.);
  (* Shrinking the limit evicts immediately, and clear resets the
     counter. *)
  Qor_cache.set_entry_limit cache 4;
  checkb "shrinking the limit evicts now" (Qor_cache.size cache <= 4);
  Qor_cache.clear cache;
  checki "clear resets the eviction counter" 0 (Qor_cache.evictions cache)

(* A hit refreshes an entry's LRU stamp: entries kept hot across the
   whole overflow survive where idle peers of the same age are swept. *)
let test_eviction_is_lru () =
  let cache = Qor_cache.create () in
  Qor_cache.set_entry_limit cache 16;
  ignore (Qor_cache.memo_float cache "hot" (fun () -> 7.));
  for i = 1 to 64 do
    ignore
      (Qor_cache.memo_float cache
         (Printf.sprintf "cold%d" i)
         (fun () -> float_of_int i));
    (* Touch the hot entry on every insertion. *)
    ignore (Qor_cache.memo_float cache "hot" (fun () -> nan))
  done;
  let v = Qor_cache.memo_float cache "hot" (fun () -> nan) in
  checkb "constantly-touched entry survives 4x overflow" (v = 7.)

let tests =
  [
    prop_memoized_equals_fresh;
    Alcotest.test_case "hit/miss counters" `Quick test_counters;
    Alcotest.test_case "entry-limit eviction" `Quick test_entry_limit_eviction;
    Alcotest.test_case "eviction is LRU" `Quick test_eviction_is_lru;
    Alcotest.test_case "signature invalidation" `Quick test_signature_invalidation;
    Alcotest.test_case "signature captures enclosing trips" `Quick
      test_signature_captures_enclosing_trips;
    Alcotest.test_case "--jobs determinism on all workloads" `Quick
      test_jobs_determinism;
  ]
