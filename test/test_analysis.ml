(* Tests for the static dataflow checker (hida.analysis): unit tests per
   check, qcheck agreement with the cycle-level simulator on random
   graphs (including multi-producer ones), and the driver's analyze
   gates end to end. *)

open Hida_estimator
open Hida_hlssim
open Hida_core
open Hida_frontend
open Helpers
module A = Hida_analysis.Analysis

let node id ~reads ~writes =
  {
    Sim.ns_id = id;
    ns_name = Printf.sprintf "n%d" id;
    ns_latency = 10;
    ns_reads = reads;
    ns_writes = writes;
  }

let buffer ?(depth = 2) id =
  { Sim.bs_id = id; bs_name = Printf.sprintf "b%d" id; bs_depth = depth }

let kinds ds = List.map (fun d -> d.A.d_check) ds

(* ---- unit tests per check ---- *)

let test_clean_chain () =
  let nodes =
    [
      node 0 ~reads:[] ~writes:[ 0 ];
      node 1 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~reads:[ 1 ] ~writes:[];
    ]
  in
  checki "clean chain has no diagnostics" 0
    (List.length (A.check_graph nodes [ buffer 0; buffer 1 ]))

let test_capacity_fork_join () =
  (* Fig. 8: b1 crosses two stages; depth 2 stalls, depth 3 is clean. *)
  let nodes =
    [
      node 0 ~reads:[] ~writes:[ 0; 1 ];
      node 1 ~reads:[ 0 ] ~writes:[ 2 ];
      node 2 ~reads:[ 1; 2 ] ~writes:[];
    ]
  in
  let shallow = A.check_graph nodes [ buffer 0; buffer 1; buffer 2 ] in
  checkb "shallow fork-join flagged" (List.mem A.Capacity (kinds shallow));
  (match List.find_opt (fun d -> d.A.d_check = A.Capacity) shallow with
  | Some d ->
      checkb "capacity names the crossing buffer" (d.A.d_buffer = Some 1);
      checkb "capacity names both endpoints" (d.A.d_nodes = [ 0; 2 ]);
      checkb "capacity is not deadlock-clean-blocking"
        (A.deadlock_free shallow && not (A.capacity_clean shallow))
  | None -> Alcotest.fail "no capacity diagnostic");
  let deep = A.check_graph nodes [ buffer 0; buffer 1 ~depth:3; buffer 2 ] in
  checki "3-stage buffer repairs the imbalance" 0 (List.length deep)

let test_capacity_depth1_serializes () =
  let nodes =
    [ node 0 ~reads:[] ~writes:[ 0 ]; node 1 ~reads:[ 0 ] ~writes:[] ]
  in
  let diags = A.check_graph nodes [ buffer 0 ~depth:1 ] in
  match List.find_opt (fun d -> d.A.d_check = A.Capacity) diags with
  | Some d ->
      checkb "single-stage buffer flagged as serializing"
        (contains ~sub:"fully serialized" d.A.d_msg)
  | None -> Alcotest.fail "depth-1 buffer not flagged"

let test_deadlock_cycle_path () =
  let nodes =
    [
      node 0 ~reads:[ 2 ] ~writes:[ 0 ];
      node 1 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~reads:[ 1 ] ~writes:[ 2 ];
    ]
  in
  let diags = A.check_graph nodes [ buffer 0; buffer 1; buffer 2 ] in
  match List.find_opt (fun d -> d.A.d_check = A.Deadlock_cycle) diags with
  | Some d ->
      checkb "cycle path in message (node by node)"
        (contains ~sub:"n0 -> n2 -> n1 -> n0" d.A.d_msg);
      checkb "cycle node ids recorded" (d.A.d_nodes = [ 0; 2; 1; 0 ]);
      checkb "deadlock_free is false" (not (A.deadlock_free diags))
  | None -> Alcotest.fail "cycle not detected"

let test_deadlock_through_multi_producer () =
  (* The cycle runs through a producer that is not the last writer of the
     shared buffer — the case a last-writer-wins map misses. *)
  let nodes =
    [
      node 0 ~reads:[ 0 ] ~writes:[ 1 ];
      node 1 ~reads:[ 1 ] ~writes:[ 0 ];
      node 2 ~reads:[] ~writes:[ 0 ];
    ]
  in
  let diags = A.check_graph nodes [ buffer 0; buffer 1 ] in
  checkb "cycle through non-last producer detected"
    (List.mem A.Deadlock_cycle (kinds diags))

let test_multi_writer_hazard () =
  let unordered =
    A.check_graph
      [
        node 0 ~reads:[] ~writes:[ 0 ];
        node 1 ~reads:[] ~writes:[ 0 ];
        node 2 ~reads:[ 0 ] ~writes:[];
      ]
      [ buffer 0 ]
  in
  checkb "unordered double write flagged"
    (List.mem A.Multi_writer (kinds unordered));
  (* Producers ordered through another buffer (the shape Alg. 3 leaves
     behind) are not a hazard. *)
  let ordered =
    A.check_graph
      [
        node 0 ~reads:[] ~writes:[ 0; 1 ];
        node 1 ~reads:[ 1 ] ~writes:[ 0 ];
        node 2 ~reads:[ 0 ] ~writes:[];
      ]
      [ buffer 0; buffer 1 ]
  in
  checkb "ordered producers are clean"
    (not (List.mem A.Multi_writer (kinds ordered)))

let test_uninitialized_read () =
  let nodes = [ node 0 ~reads:[ 0 ] ~writes:[ 1 ] ] in
  let bufs = [ buffer 0; buffer 1 ] in
  checkb "read of never-written internal buffer flagged"
    (List.mem A.Uninitialized_read (kinds (A.check_graph nodes bufs)));
  checkb "external buffers are exempt"
    (not
       (List.mem A.Uninitialized_read
          (kinds (A.check_graph ~external_:[ 0 ] nodes bufs))))

let test_self_read_write () =
  let diags =
    A.check_graph [ node 0 ~reads:[ 0 ] ~writes:[ 0 ] ] [ buffer 0 ]
  in
  checkb "node reading and writing one buffer flagged"
    (List.mem A.Self_read_write (kinds diags))

let test_undeclared_buffer () =
  checkb "undeclared buffer raises Invalid_argument"
    (try
       ignore (A.check_graph [ node 0 ~reads:[ 7 ] ~writes:[] ] []);
       false
     with Invalid_argument msg -> contains ~sub:"undeclared buffer 7" msg)

let test_severity () =
  let cap =
    { A.d_check = A.Capacity; d_nodes = []; d_buffer = None; d_msg = "" }
  in
  let dead =
    { A.d_check = A.Deadlock_cycle; d_nodes = []; d_buffer = None; d_msg = "" }
  in
  checkb "capacity is an error at the final gate"
    (A.severity cap = Hida_obs.Remark.Error);
  checkb "capacity is neutral before balancing"
    (A.severity ~pre_balance:true cap = Hida_obs.Remark.Analysis);
  checkb "deadlock is an error even before balancing"
    (A.severity ~pre_balance:true dead = Hida_obs.Remark.Error)

(* ---- agreement with the simulator (qcheck) ---- *)

(* Random graphs with shared buffers (multi-producer by construction) and
   arbitrary read sets, so cycles occur with useful frequency.  On every
   graph the analyzer's deadlock verdict must match whether [Sim.run]
   raises [Deadlock]. *)
let prop_deadlock_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"analyzer deadlock verdict agrees with the simulator" ~count:250
       QCheck2.Gen.(
         tup3 (int_range 3 8) (int_range 2 6) (int_range 0 1_000_000))
       (fun (n_nodes, n_bufs, seed) ->
         let rng = ref (seed + 1) in
         let next m =
           rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
           !rng mod m
         in
         let bufs = List.init n_bufs (fun i -> buffer i) in
         let nodes =
           List.init n_nodes (fun i ->
               (* Nodes 0 and 1 both write buffer 0: every generated graph
                  has a multi-producer buffer. *)
               let writes = if i < 2 then [ 0 ] else [ next n_bufs ] in
               let reads =
                 List.filter
                   (fun b -> not (List.mem b writes))
                   (List.sort_uniq compare
                      (List.init (next 3) (fun _ -> next n_bufs)))
               in
               node i ~reads ~writes)
         in
         let diags = A.check_graph nodes bufs in
         let sim_deadlock =
           try
             ignore (Sim.run ~frames:4 nodes bufs);
             false
           with Sim.Deadlock _ -> true
         in
         A.deadlock_free diags = not sim_deadlock))

(* Layered DAGs with random depths and cross-layer edges: whenever the
   analyzer finds no capacity (or deadlock) problem, the simulated
   steady-state interval equals the maximum node latency — the balanced
   pipeline condition of §6.4.2. *)
let prop_capacity_clean_streams =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"capacity-clean graphs stream at max latency"
       ~count:150
       QCheck2.Gen.(
         tup2 (list_size (int_range 2 4) (int_range 1 3)) (int_range 0 1_000_000))
       (fun (layers, seed) ->
         let rng = ref (seed + 1) in
         let next m =
           rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
           !rng mod m
         in
         let nodes = ref [] and bufs = ref [] in
         let node_id = ref 0 and buf_id = ref 0 in
         let earlier = ref [] in
         List.iter
           (fun width ->
             let this = ref [] in
             for _ = 1 to width do
               let reads =
                 match !earlier with
                 | [] -> []
                 | bs ->
                     List.sort_uniq compare
                       (List.init
                          (1 + next 2)
                          (fun _ -> List.nth bs (next (List.length bs))))
               in
               let b = !buf_id in
               incr buf_id;
               this := b :: !this;
               bufs := buffer ~depth:(1 + next 4) b :: !bufs;
               nodes :=
                 {
                   Sim.ns_id = !node_id;
                   ns_name = "";
                   ns_latency = 10 + next 190;
                   ns_reads = reads;
                   ns_writes = [ b ];
                 }
                 :: !nodes;
               incr node_id
             done;
             earlier := !earlier @ !this)
           layers;
         let nodes = List.rev !nodes and bufs = List.rev !bufs in
         let diags = A.check_graph nodes bufs in
         if not (A.capacity_clean diags) then true
         else begin
           let r = Sim.run ~frames:32 nodes bufs in
           let maxl =
             float_of_int
               (List.fold_left (fun acc n -> max acc n.Sim.ns_latency) 1 nodes)
           in
           Float.abs (r.Sim.r_steady_interval -. maxl) <= (maxl *. 0.02) +. 1.
         end))

(* ---- structural IR and driver gates ---- *)

let test_check_func_on_compiled_schedule () =
  let _m, f = two_stage_kernel () in
  ignore (Driver.run_memref ~device:Device.zu3eg f);
  checki "compiled two-stage kernel is clean" 0 (List.length (A.check_func f))

let test_driver_gate_flags_unbalanced () =
  (* With balancing disabled, the Fig. 8 fork-join keeps its slack-2 edge
     and the final gate reports it (diagnostics, not exceptions). *)
  let _m, f = fork_join_kernel () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with analyze = true; enable_balancing = false }
      ~device:Device.zu3eg f
  in
  checkb "final gate reports the imbalance"
    (List.mem A.Capacity (kinds rep.Driver.analysis));
  checkb "gate failure lands in the remark stream as an error"
    (List.exists
       (fun (r : Hida_obs.Remark.t) ->
         r.Hida_obs.Remark.r_pass = "dataflow-analysis"
         && r.Hida_obs.Remark.r_severity = Hida_obs.Remark.Error
         && contains ~sub:"[capacity]" r.Hida_obs.Remark.r_msg)
       rep.Driver.remarks)

let test_driver_gates_with_balancing () =
  (* Standard pipeline: the pre-balance gate sees the imbalance as a
     neutral analysis remark, balancing repairs it, and the final gate is
     clean. *)
  let _m, f = fork_join_kernel () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with analyze = true }
      ~device:Device.zu3eg f
  in
  checki "final gate clean after balancing" 0 (List.length rep.Driver.analysis);
  checkb "pre-balance gate reported the §6.4.2 imbalance neutrally"
    (List.exists
       (fun (r : Hida_obs.Remark.t) ->
         r.Hida_obs.Remark.r_pass = "dataflow-analysis-post-lowering"
         && r.Hida_obs.Remark.r_severity = Hida_obs.Remark.Analysis
         && contains ~sub:"[capacity]" r.Hida_obs.Remark.r_msg)
       rep.Driver.remarks)

let test_workloads_clean () =
  (* gemver exercises the balance-softened external buffer + token
     streams; lenet the nn path (the bench 'analyze' experiment covers
     the whole zoo). *)
  let _m, f = (Polybench_extra.by_name "gemver").Polybench_extra.e_build () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with analyze = true }
      ~device:Device.zu3eg f
  in
  checki "gemver clean" 0 (List.length rep.Driver.analysis);
  let _m, f = (Models.by_name "lenet").Models.e_build ~scale:0.25 () in
  let rep =
    Driver.run_nn
      ~opts:{ Driver.default with analyze = true }
      ~device:Device.vu9p_slr f
  in
  checki "lenet clean" 0 (List.length rep.Driver.analysis)

let tests =
  [
    Alcotest.test_case "clean chain" `Quick test_clean_chain;
    Alcotest.test_case "capacity on fork-join (Fig 8)" `Quick
      test_capacity_fork_join;
    Alcotest.test_case "capacity on single-stage buffer" `Quick
      test_capacity_depth1_serializes;
    Alcotest.test_case "deadlock cycle path" `Quick test_deadlock_cycle_path;
    Alcotest.test_case "deadlock through multi-producer buffer" `Quick
      test_deadlock_through_multi_producer;
    Alcotest.test_case "unordered multi-writer hazard" `Quick
      test_multi_writer_hazard;
    Alcotest.test_case "uninitialized read" `Quick test_uninitialized_read;
    Alcotest.test_case "self read-write" `Quick test_self_read_write;
    Alcotest.test_case "undeclared buffer" `Quick test_undeclared_buffer;
    Alcotest.test_case "gate severities" `Quick test_severity;
    prop_deadlock_agreement;
    prop_capacity_clean_streams;
    Alcotest.test_case "check_func on compiled schedule" `Quick
      test_check_func_on_compiled_schedule;
    Alcotest.test_case "final gate flags unbalanced design" `Quick
      test_driver_gate_flags_unbalanced;
    Alcotest.test_case "both gates across the standard pipeline" `Quick
      test_driver_gates_with_balancing;
    Alcotest.test_case "workload gates are clean" `Quick test_workloads_clean;
  ]
