let () =
  Alcotest.run "hida"
    [
      ("affine", Test_affine.tests);
      ("ir", Test_ir.tests);
      ("dialects", Test_dialects.tests);
      ("interp", Test_interp.tests);
      ("estimator", Test_estimator.tests);
      ("passes", Test_passes.tests);
      ("parallelize", Test_parallelize.tests);
      ("domain-pool", Test_domain_pool.tests);
      ("sim", Test_sim.tests);
      ("analysis", Test_analysis.tests);
      ("driver", Test_driver.tests);
      ("models", Test_models.tests @ Test_models.extra_tests);
      ("emitter", Test_emitter.tests);
      ("streamize", Test_streamize.tests);
      ("hierarchy", Test_hierarchy.tests);
      ("canonicalize", Test_canonicalize.tests);
      ("fuzz-nn", Test_fuzz_nn.tests);
      ("interface", Test_interface.tests);
      ("affine-if", Test_affine_if.tests);
      ("loop-transforms", Test_loop_transforms.tests);
      ("obs", Test_obs.tests);
      ("qor-cache", Test_qor_cache.tests);
      ("subtree", Test_subtree.tests);
      ("serve", Test_serve.tests);
      ("text", Test_text.tests);
      ("golden", Test_golden.tests);
    ]
