(* Golden-file tests: a FileCheck-lite harness over test/golden/*.mlir.

   Each file declares the pipeline stage to run on a `// RUN: <stage>`
   line (default: parse).  The harness parses the file, runs that stage
   pipeline, re-prints the result canonically, and matches the file's
   CHECK directives against the print.  Every file additionally has the
   round-trip law checked on its parsed form.

   To regenerate expectations after an intentional IR-format change, run
   the failing case, read the "---- output ----" section of the failure,
   and update the CHECK lines to match. *)

open Hida_ir
open Hida_dialects
open Hida_core
open Hida_text

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_re = Str.regexp "// RUN:[ \t]*\\([a-z-]+\\)"

let stage_of_text text =
  match Str.search_forward run_re text 0 with
  | exception Not_found -> "parse"
  | _ -> Str.matched_group 1 text

let add_stage_passes mgr stage =
  let base () =
    Pass.add mgr Canonicalize.pass;
    Pass.add mgr Construct.pass;
    Pass.add mgr (Fusion.pass ())
  in
  let lowered ~nn () =
    base ();
    if nn then Pass.add mgr (Lowering.nn_pass ())
    else Pass.add mgr (Pass.make ~name:"lowering" Lowering.lower_memref_func)
  in
  match stage with
  | "parse" -> ()
  | "canonicalize" -> Pass.add mgr Canonicalize.pass
  | "construct" ->
      Pass.add mgr Canonicalize.pass;
      Pass.add mgr Construct.pass
  | "lower" -> lowered ~nn:false ()
  | "lower-nn" -> lowered ~nn:true ()
  | "multi-producer" ->
      lowered ~nn:false ();
      Pass.add mgr Multi_producer.pass
  | "balance" ->
      lowered ~nn:false ();
      Pass.add mgr Multi_producer.pass;
      Pass.add mgr (Balance.pass ())
  | "parallelize" ->
      lowered ~nn:false ();
      Pass.add mgr Multi_producer.pass;
      Pass.add mgr (Balance.pass ());
      Pass.add mgr
        (Parallelize.pass ~mode:Parallelize.ia_ca ~max_parallel_factor:4 ())
  | s -> Alcotest.failf "unknown RUN stage %S" s

let run_case path () =
  let text = read_file path in
  let func =
    match Parser.parse_string ~filename:path text with
    | Ok op -> op
    | Error d -> Alcotest.fail (Parser.diag_to_string d)
  in
  (* the corpus doubles as round-trip coverage of syntax corners *)
  let s1 = Printer.op_to_string func in
  let s2 = Printer.op_to_string (Parser.parse_string_exn ~filename:path s1) in
  Alcotest.(check string) "roundtrip" s1 s2;
  let mgr = Pass.manager ~verify_each:true () in
  add_stage_passes mgr (stage_of_text text);
  Pass.run mgr func;
  let output = Printer.op_to_string func in
  let rules, result = Filecheck.check ~test_text:text ~output in
  if rules = [] then Alcotest.failf "%s: no CHECK directives" path;
  match result with
  | Ok () -> ()
  | Error f ->
      Alcotest.fail
        (Filecheck.failure_to_string ~file:path f
        ^ "\n---- output ----\n" ^ output)

let tests =
  (* dune runtest executes in the test directory; dune exec does not, so
     fall back to the corpus staged next to the test binary *)
  let dir =
    let exe_dir = Filename.dirname Sys.executable_name in
    List.find Sys.file_exists
      [
        "golden";
        Filename.concat exe_dir "golden";
        (* dune exec from the project root: fall back to the source tree *)
        Filename.concat exe_dir "../../../test/golden";
      ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mlir")
  |> List.sort compare
  |> List.map (fun f ->
         Alcotest.test_case f `Quick (run_case (Filename.concat dir f)))
