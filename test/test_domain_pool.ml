(* Tests for the persistent work-stealing domain pool backing the
   parallel DSE (and, via reservation accounting, hida-serve).  The
   properties pinned here are the ones the parallelizer's determinism
   and the serve layer's domain budget rest on:

     - results land in caller-owned slots committed in task order,
       whatever the completion order;
     - idle participants steal queued work instead of waiting it out;
     - the pool is reused across compiles (no domain-per-compile leak);
     - a task exception reaches the submitter after the batch drains;
     - [effective_jobs] clamps against the worker budget. *)

open Hida_core
open Hida_estimator
open Hida_frontend
open Helpers

(* ---- ordered slots under shuffled completion order ---- *)

let test_ordered_slots () =
  let n = 64 in
  let slots = Array.make n (-1) in
  let tasks =
    Array.init n (fun i ->
        fun () ->
          (* Later-indexed tasks finish first (and spin a little), so
             completion order is far from submission order. *)
          let spin = (n - i) * 50 in
          let acc = ref 0 in
          for k = 1 to spin do
            acc := !acc + k
          done;
          ignore !acc;
          slots.(i) <- i)
  in
  let rep = Domain_pool.run_batch ~jobs:4 tasks in
  checki "every task ran" n rep.Domain_pool.br_tasks;
  (* Reading the slots in index order is the deterministic merge: the
     value at index i depends only on task i, never on scheduling. *)
  Array.iteri (fun i v -> checki (Printf.sprintf "slot %d" i) i v) slots

(* ---- deterministic merge: reduction over slots is order-free ---- *)

let test_merge_ignores_completion_order () =
  (* Two batches with opposite finishing orders must commit the same
     reduction result when slots are folded in index order. *)
  let run reversed =
    let n = 32 in
    let slots = Array.make n 0. in
    let tasks =
      Array.init n (fun i ->
          fun () ->
            let spin = if reversed then i * 80 else (n - i) * 80 in
            let acc = ref 0 in
            for k = 1 to spin do
              acc := !acc + k
            done;
            ignore !acc;
            slots.(i) <- float_of_int (i * i) /. 7.)
    in
    ignore (Domain_pool.run_batch ~jobs:4 tasks);
    Array.fold_left (fun a v -> (a *. 1.000001) +. v) 0. slots
  in
  checkb "fold over index-ordered slots is schedule-independent"
    (run false = run true)

(* ---- work stealing ---- *)

let test_steals_happen () =
  (* One task parks its executor until every other task of the batch is
     done; the remaining tasks in that participant's deque can then only
     finish by being stolen.  The interleaving is up to the OS
     scheduler, so retry a few times rather than flake. *)
  let attempt () =
    let n = 16 in
    let remaining = Atomic.make (n - 1) in
    let tasks =
      Array.init n (fun i ->
          if i = n - 1 then fun () ->
            while Atomic.get remaining > 0 do
              Domain.cpu_relax ()
            done
          else fun () -> Atomic.decr remaining)
    in
    let rep = Domain_pool.run_batch ~jobs:2 tasks in
    rep.Domain_pool.br_steals > 0
  in
  let rec go k = if attempt () then true else if k = 0 then false else go (k - 1) in
  checkb "idle participants steal queued tasks" (go 20)

(* ---- pool reuse across compiles (no domain leak) ---- *)

let test_pool_reused_across_compiles () =
  let compile () =
    let _m, f = Polybench.k_3mm ~scale:0.1 () in
    ignore
      (Driver.run_memref
         ~opts:{ Driver.default with jobs = 2 }
         ~device:Device.zu3eg f)
  in
  compile ();
  let s1 = Domain_pool.stats () in
  let ids1 = Domain_pool.worker_domain_ids () in
  checkb "first parallel compile spawned workers" (s1.Domain_pool.st_spawned > 0);
  compile ();
  compile ();
  let s2 = Domain_pool.stats () in
  let ids2 = Domain_pool.worker_domain_ids () in
  checki "no new domains for subsequent compiles" s1.Domain_pool.st_spawned
    s2.Domain_pool.st_spawned;
  check (Alcotest.list Alcotest.int) "same worker domains serve every compile"
    ids1 ids2;
  checkb "later compiles ran batches on the pool"
    (s2.Domain_pool.st_batches > s1.Domain_pool.st_batches
    || s2.Domain_pool.st_tasks >= s1.Domain_pool.st_tasks)

(* ---- exception propagation ---- *)

exception Boom of int

let test_exception_propagates () =
  let ran = Atomic.make 0 in
  let tasks =
    Array.init 12 (fun i ->
        fun () ->
          Atomic.incr ran;
          if i = 5 then raise (Boom i))
  in
  (match Domain_pool.run_batch ~jobs:2 tasks with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 5 -> ());
  (* The batch drains before re-raising: no task is abandoned. *)
  checki "all tasks ran despite the failure" 12 (Atomic.get ran)

(* ---- empty batch ---- *)

let test_empty_batch () =
  let rep = Domain_pool.run_batch ~jobs:4 [||] in
  checki "no tasks" 0 rep.Domain_pool.br_tasks;
  checki "no steals" 0 rep.Domain_pool.br_steals

(* ---- jobs clamping ---- *)

let test_effective_jobs () =
  let restore () = Domain_pool.set_max_workers (-1) in
  Fun.protect ~finally:restore (fun () ->
      Domain_pool.set_max_workers 2;
      checki "jobs 8 clamps to 1 caller + 2 workers" 3
        (Domain_pool.effective_jobs 8);
      checki "jobs 2 unaffected by a larger budget" 2
        (Domain_pool.effective_jobs 2);
      Domain_pool.set_max_workers 0;
      checki "no workers leaves the caller alone" 1
        (Domain_pool.effective_jobs 8);
      checki "jobs floor is 1" 1 (Domain_pool.effective_jobs 0));
  checkb "default budget restored" (Domain_pool.max_workers () >= 1)

let tests =
  [
    Alcotest.test_case "slots committed in task order" `Quick test_ordered_slots;
    Alcotest.test_case "merge ignores completion order" `Quick
      test_merge_ignores_completion_order;
    Alcotest.test_case "work stealing engages" `Quick test_steals_happen;
    Alcotest.test_case "pool reused across compiles" `Quick
      test_pool_reused_across_compiles;
    Alcotest.test_case "task exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "effective_jobs clamping" `Quick test_effective_jobs;
  ]
