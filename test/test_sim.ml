(* Tests for the cycle-level dataflow simulator, including cross-checks
   against the analytic estimator. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_estimator
open Hida_hlssim
open Hida_core
open Hida_frontend
open Helpers

let node id ~lat ~reads ~writes =
  { Sim.ns_id = id; ns_name = Printf.sprintf "n%d" id; ns_latency = lat; ns_reads = reads; ns_writes = writes }

let buffer id ~depth = { Sim.bs_id = id; bs_name = Printf.sprintf "b%d" id; bs_depth = depth }

let test_chain_pipeline () =
  (* Three-stage pipeline with ping-pong buffers: steady interval equals
     the max node latency. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:250 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~lat:120 ~reads:[ 1 ] ~writes:[];
    ]
  in
  let buffers = [ buffer 0 ~depth:2; buffer 1 ~depth:2 ] in
  let r = Sim.run ~frames:64 nodes buffers in
  checkb "steady interval ~ max latency"
    (Float.abs (r.Sim.r_steady_interval -. 250.) < 5.);
  checki "first frame latency = chain sum" 470 r.Sim.r_first_frame_latency

let test_depth1_serializes () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let pingpong = Sim.run ~frames:64 nodes [ buffer 0 ~depth:2 ] in
  let single = Sim.run ~frames:64 nodes [ buffer 0 ~depth:1 ] in
  checkb "ping-pong overlaps" (pingpong.Sim.r_steady_interval < 110.);
  checkb "single stage serializes" (single.Sim.r_steady_interval > 190.)

let test_fork_join_stall () =
  (* Fig. 8: n0 feeds n1 and n2; n2 also consumes n1's output.  The edge
     n0->n2 crosses two stages: with depth-2 buffers n0 stalls; giving
     that buffer three stages restores full throughput. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0; 1 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[ 2 ];
      node 2 ~lat:100 ~reads:[ 1; 2 ] ~writes:[];
    ]
  in
  let shallow =
    Sim.run ~frames:64 nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2; buffer 2 ~depth:2 ]
  in
  let deep =
    Sim.run ~frames:64 nodes [ buffer 0 ~depth:2; buffer 1 ~depth:3; buffer 2 ~depth:2 ]
  in
  checkb "shallow fork-join stalls" (shallow.Sim.r_steady_interval >= 149.);
  checkb "balanced fork-join streams" (deep.Sim.r_steady_interval < 110.)

let test_two_producer_waits_for_slowest () =
  (* Regression: two producers of one buffer, the slow one first in the
     node list.  A last-writer-wins writer map keeps only the fast
     producer, starting the consumer 290 cycles too early. *)
  let nodes =
    [
      node 0 ~lat:300 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[] ~writes:[ 0 ];
      node 2 ~lat:50 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:8 nodes [ buffer 0 ~depth:2 ] in
  let _, trace2 =
    List.find (fun ((n : Sim.node_spec), _) -> n.Sim.ns_id = 2) r.Sim.r_trace
  in
  checkb "consumer waits for the slowest producer" (fst trace2.(0) >= 300);
  checki "first frame latency includes the slow producer" 350
    r.Sim.r_first_frame_latency

let test_cycle_through_earlier_producer () =
  (* Regression: the cycle runs through a producer that is not the last
     writer of the shared buffer; a last-writer-wins map drops the edge
     n0 -> n1 and misses the deadlock entirely. *)
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
      node 1 ~lat:10 ~reads:[ 1 ] ~writes:[ 0 ];
      node 2 ~lat:10 ~reads:[] ~writes:[ 0 ];
    ]
  in
  checkb "cycle through non-last producer detected"
    (try
       ignore (Sim.run nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2 ]);
       false
     with Sim.Deadlock _ -> true)

let test_deadlock_cycle_path () =
  (* The Deadlock message names the full cycle node by node. *)
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 2 ] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~lat:10 ~reads:[ 1 ] ~writes:[ 2 ];
    ]
  in
  let buffers = [ buffer 0 ~depth:2; buffer 1 ~depth:2; buffer 2 ~depth:2 ] in
  match Sim.run nodes buffers with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock msg ->
      checkb
        (Printf.sprintf "cycle path reported (%s)" msg)
        (contains ~sub:"n0 -> n2 -> n1 -> n0" msg)

let test_steady_interval_small_frames () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let bufs = [ buffer 0 ~depth:2 ] in
  let one = Sim.run ~frames:1 nodes bufs in
  checkb "frames=1 degrades to the makespan"
    (Float.abs (one.Sim.r_steady_interval -. 200.) < 1.);
  let two = Sim.run ~frames:2 nodes bufs in
  (* The old total/frames measurement would report 150 here (pipeline
     fill averaged in); the per-node delta reports the true interval. *)
  checkb "frames=2 measures the per-node delta"
    (Float.abs (two.Sim.r_steady_interval -. 100.) < 1.)

let test_undeclared_buffer_rejected () =
  let nodes = [ node 0 ~lat:10 ~reads:[] ~writes:[ 5 ] ] in
  checkb "undeclared buffer raises Invalid_argument"
    (try
       ignore (Sim.run nodes []);
       false
     with Invalid_argument msg -> contains ~sub:"undeclared buffer 5" msg)

let test_deadlock_detection () =
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 1 ] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
    ]
  in
  checkb "cycle detected"
    (try
       ignore (Sim.run nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2 ]);
       false
     with Sim.Deadlock _ -> true)

let test_busy_fractions () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:50 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:64 nodes [ buffer 0 ~depth:2 ] in
  let busy0 = List.assoc 0 r.Sim.r_node_busy in
  let busy1 = List.assoc 1 r.Sim.r_node_busy in
  checkb "critical node busier" (busy0 > busy1);
  checkb "busy fraction near 1 for critical" (busy0 > 0.9)

let test_sim_cross_checks_estimator () =
  (* The simulated steady interval of a compiled dataflow design must
     match the analytic estimate within 20%. *)
  let _m, f = Polybench.k_3mm ~scale:0.1 () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with max_parallel_factor = 4 }
      ~device:Device.zu3eg f
  in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let sim = Sim_ir.simulate_schedule ~frames:64 Device.zu3eg sched in
  let analytic = float_of_int rep.Driver.estimate.Qor.d_interval in
  let simulated = sim.Sim.r_steady_interval in
  checkb
    (Printf.sprintf "sim %.0f vs analytic %.0f" simulated analytic)
    (simulated <= analytic *. 1.2 && simulated >= analytic *. 0.5)

let test_sim_vs_analytic_all_kernels () =
  (* For every multi-loop PolyBench kernel, the simulated steady interval
     of the compiled design must agree with the analytic estimate. *)
  List.iter
    (fun (e : Polybench.entry) ->
      if e.Polybench.e_multi_loop then begin
        let _m, f = e.Polybench.e_build ~scale:0.1 () in
        let rep =
          Driver.run_memref
            ~opts:{ Driver.default with max_parallel_factor = 4 }
            ~device:Device.zu3eg f
        in
        match Walk.collect f ~pred:Hida_d.is_schedule with
        | sched :: _ ->
            let sim = Sim_ir.simulate_schedule ~frames:64 Device.zu3eg sched in
            let analytic = float_of_int rep.Driver.estimate.Qor.d_interval in
            checkb
              (Printf.sprintf "%s: sim %.0f within 2x of analytic %.0f"
                 e.Polybench.e_name sim.Sim.r_steady_interval analytic)
              (sim.Sim.r_steady_interval <= analytic *. 1.25
              && sim.Sim.r_steady_interval >= analytic *. 0.4)
        | [] -> ()
      end)
    Polybench.all

let prop_interval_bounded_by_sum_and_max =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sim interval between max and sum of latencies"
       ~count:50
       QCheck2.Gen.(list_size (int_range 2 5) (int_range 10 200))
       (fun lats ->
         let nodes =
           List.mapi
             (fun i lat ->
               node i ~lat
                 ~reads:(if i = 0 then [] else [ i - 1 ])
                 ~writes:(if i = List.length lats - 1 then [] else [ i ]))
             lats
         in
         let buffers =
           List.init (List.length lats - 1) (fun i -> buffer i ~depth:2)
         in
         let r = Sim.run ~frames:32 nodes buffers in
         let maxl = float_of_int (List.fold_left max 1 lats) in
         let suml = float_of_int (List.fold_left ( + ) 0 lats) in
         r.Sim.r_steady_interval >= maxl *. 0.99
         && r.Sim.r_steady_interval <= suml +. 1.))

let test_trace_and_gantt () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:200 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:8 nodes [ buffer 0 ~depth:2 ] in
  (* Traces are monotone and respect latencies. *)
  List.iter
    (fun ((n : Sim.node_spec), t) ->
      Array.iteri
        (fun k (s, f) ->
          checkb "finish = start + latency" (f = s + n.Sim.ns_latency);
          if k > 0 then checkb "frames ordered" (s >= fst t.(k - 1)))
        t)
    r.Sim.r_trace;
  let g = Sim.gantt ~frames:3 r in
  checkb "gantt has one row per node"
    (List.length (String.split_on_char '\n' g) >= 3);
  checkb "gantt shows frames" (Helpers.contains ~sub:"0" g && Helpers.contains ~sub:"1" g)

(* Random layered DAGs: interval bounded by [max, sum] of latencies and
   weakly decreasing in buffer depth. *)
let prop_random_dag =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random DAGs: interval bounds and depth monotonicity"
       ~count:40
       QCheck2.Gen.(
         tup3
           (list_size (int_range 2 4) (int_range 1 3)) (* nodes per layer *)
           (int_range 10 200) (* base latency *)
           (int_range 0 1000) (* seed *))
       (fun (layers, base, seed) ->
         let rng = ref seed in
         let next () =
           rng := ((!rng * 1103515245) + 12345) land 0xFFFFFF;
           !rng
         in
         (* Build a layered DAG: every node reads one buffer from the
            previous layer and writes one buffer. *)
         let nodes = ref [] and buffers = ref [] in
         let node_id = ref 0 and buf_id = ref 0 in
         let prev_bufs = ref [] in
         List.iter
           (fun width ->
             let this_bufs = ref [] in
             for _ = 1 to width do
               let reads =
                 match !prev_bufs with
                 | [] -> []
                 | bs -> [ List.nth bs (next () mod List.length bs) ]
               in
               let b = !buf_id in
               incr buf_id;
               this_bufs := b :: !this_bufs;
               buffers := { Sim.bs_id = b; bs_name = ""; bs_depth = 2 } :: !buffers;
               nodes :=
                 {
                   Sim.ns_id = !node_id;
                   ns_name = "";
                   ns_latency = base + (next () mod base);
                   ns_reads = reads;
                   ns_writes = [ b ];
                 }
                 :: !nodes;
               incr node_id
             done;
             prev_bufs := !this_bufs)
           layers;
         let nodes = List.rev !nodes and buffers = List.rev !buffers in
         let r2 = Sim.run ~frames:24 nodes buffers in
         let deep =
           List.map (fun b -> { b with Sim.bs_depth = 4 }) buffers
         in
         let r4 = Sim.run ~frames:24 nodes deep in
         let maxl =
           float_of_int
             (List.fold_left (fun acc n -> max acc n.Sim.ns_latency) 1 nodes)
         in
         let suml =
           float_of_int
             (List.fold_left (fun acc n -> acc + n.Sim.ns_latency) 0 nodes)
         in
         r2.Sim.r_steady_interval >= maxl *. 0.99
         && r2.Sim.r_steady_interval <= suml +. 1.
         && r4.Sim.r_steady_interval <= r2.Sim.r_steady_interval +. 1.))

let tests =
  [
    Alcotest.test_case "trace and gantt" `Quick test_trace_and_gantt;
    prop_random_dag;
    Alcotest.test_case "chain pipeline" `Quick test_chain_pipeline;
    Alcotest.test_case "depth-1 serialization" `Quick test_depth1_serializes;
    Alcotest.test_case "fork-join stall (Fig 8)" `Quick test_fork_join_stall;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "two-producer waits for slowest" `Quick
      test_two_producer_waits_for_slowest;
    Alcotest.test_case "cycle through non-last producer" `Quick
      test_cycle_through_earlier_producer;
    Alcotest.test_case "deadlock cycle path" `Quick test_deadlock_cycle_path;
    Alcotest.test_case "steady interval at small frame counts" `Quick
      test_steady_interval_small_frames;
    Alcotest.test_case "undeclared buffer rejected" `Quick
      test_undeclared_buffer_rejected;
    Alcotest.test_case "busy fractions" `Quick test_busy_fractions;
    Alcotest.test_case "sim cross-checks estimator" `Quick test_sim_cross_checks_estimator;
    Alcotest.test_case "sim vs analytic on all kernels" `Quick test_sim_vs_analytic_all_kernels;
    prop_interval_bounded_by_sum_and_max;
  ]
