(* Tests for the cycle-level dataflow simulator, including cross-checks
   against the analytic estimator. *)

open Hida_ir
open Ir
open Hida_dialects
open Hida_estimator
open Hida_hlssim
open Hida_core
open Hida_frontend
open Helpers

let node id ~lat ~reads ~writes =
  { Sim.ns_id = id; ns_name = Printf.sprintf "n%d" id; ns_latency = lat; ns_reads = reads; ns_writes = writes }

let buffer id ~depth = { Sim.bs_id = id; bs_name = Printf.sprintf "b%d" id; bs_depth = depth }

let test_chain_pipeline () =
  (* Three-stage pipeline with ping-pong buffers: steady interval equals
     the max node latency. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:250 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~lat:120 ~reads:[ 1 ] ~writes:[];
    ]
  in
  let buffers = [ buffer 0 ~depth:2; buffer 1 ~depth:2 ] in
  let r = Sim.run ~frames:64 nodes buffers in
  checkb "steady interval ~ max latency"
    (Float.abs (r.Sim.r_steady_interval -. 250.) < 5.);
  checki "first frame latency = chain sum" 470 r.Sim.r_first_frame_latency

let test_depth1_serializes () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let pingpong = Sim.run ~frames:64 nodes [ buffer 0 ~depth:2 ] in
  let single = Sim.run ~frames:64 nodes [ buffer 0 ~depth:1 ] in
  checkb "ping-pong overlaps" (pingpong.Sim.r_steady_interval < 110.);
  checkb "single stage serializes" (single.Sim.r_steady_interval > 190.)

let test_fork_join_stall () =
  (* Fig. 8: n0 feeds n1 and n2; n2 also consumes n1's output.  The edge
     n0->n2 crosses two stages: with depth-2 buffers n0 stalls; giving
     that buffer three stages restores full throughput. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0; 1 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[ 2 ];
      node 2 ~lat:100 ~reads:[ 1; 2 ] ~writes:[];
    ]
  in
  let shallow =
    Sim.run ~frames:64 nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2; buffer 2 ~depth:2 ]
  in
  let deep =
    Sim.run ~frames:64 nodes [ buffer 0 ~depth:2; buffer 1 ~depth:3; buffer 2 ~depth:2 ]
  in
  checkb "shallow fork-join stalls" (shallow.Sim.r_steady_interval >= 149.);
  checkb "balanced fork-join streams" (deep.Sim.r_steady_interval < 110.)

let test_two_producer_waits_for_slowest () =
  (* Regression: two producers of one buffer, the slow one first in the
     node list.  A last-writer-wins writer map keeps only the fast
     producer, starting the consumer 290 cycles too early. *)
  let nodes =
    [
      node 0 ~lat:300 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[] ~writes:[ 0 ];
      node 2 ~lat:50 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:8 nodes [ buffer 0 ~depth:2 ] in
  let _, trace2 =
    List.find (fun ((n : Sim.node_spec), _) -> n.Sim.ns_id = 2) r.Sim.r_trace
  in
  checkb "consumer waits for the slowest producer" (fst trace2.(0) >= 300);
  checki "first frame latency includes the slow producer" 350
    r.Sim.r_first_frame_latency

let test_cycle_through_earlier_producer () =
  (* Regression: the cycle runs through a producer that is not the last
     writer of the shared buffer; a last-writer-wins map drops the edge
     n0 -> n1 and misses the deadlock entirely. *)
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
      node 1 ~lat:10 ~reads:[ 1 ] ~writes:[ 0 ];
      node 2 ~lat:10 ~reads:[] ~writes:[ 0 ];
    ]
  in
  checkb "cycle through non-last producer detected"
    (try
       ignore (Sim.run nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2 ]);
       false
     with Sim.Deadlock _ -> true)

let test_deadlock_cycle_path () =
  (* The Deadlock message names the full cycle node by node. *)
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 2 ] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~lat:10 ~reads:[ 1 ] ~writes:[ 2 ];
    ]
  in
  let buffers = [ buffer 0 ~depth:2; buffer 1 ~depth:2; buffer 2 ~depth:2 ] in
  match Sim.run nodes buffers with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock msg ->
      checkb
        (Printf.sprintf "cycle path reported (%s)" msg)
        (contains ~sub:"n0 -> n2 -> n1 -> n0" msg)

let test_steady_interval_small_frames () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:100 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let bufs = [ buffer 0 ~depth:2 ] in
  let one = Sim.run ~frames:1 nodes bufs in
  checkb "frames=1 degrades to the makespan"
    (Float.abs (one.Sim.r_steady_interval -. 200.) < 1.);
  let two = Sim.run ~frames:2 nodes bufs in
  (* The old total/frames measurement would report 150 here (pipeline
     fill averaged in); the per-node delta reports the true interval. *)
  checkb "frames=2 measures the per-node delta"
    (Float.abs (two.Sim.r_steady_interval -. 100.) < 1.)

let test_undeclared_buffer_rejected () =
  let nodes = [ node 0 ~lat:10 ~reads:[] ~writes:[ 5 ] ] in
  checkb "undeclared buffer raises Invalid_argument"
    (try
       ignore (Sim.run nodes []);
       false
     with Invalid_argument msg -> contains ~sub:"undeclared buffer 5" msg)

let test_deadlock_detection () =
  let nodes =
    [
      node 0 ~lat:10 ~reads:[ 1 ] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[ 1 ];
    ]
  in
  checkb "cycle detected"
    (try
       ignore (Sim.run nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2 ]);
       false
     with Sim.Deadlock _ -> true)

let test_busy_fractions () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:50 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:64 nodes [ buffer 0 ~depth:2 ] in
  let busy0 = List.assoc 0 r.Sim.r_node_busy in
  let busy1 = List.assoc 1 r.Sim.r_node_busy in
  checkb "critical node busier" (busy0 > busy1);
  checkb "busy fraction near 1 for critical" (busy0 > 0.9)

let test_sim_cross_checks_estimator () =
  (* The simulated steady interval of a compiled dataflow design must
     match the analytic estimate within 20%. *)
  let _m, f = Polybench.k_3mm ~scale:0.1 () in
  let rep =
    Driver.run_memref
      ~opts:{ Driver.default with max_parallel_factor = 4 }
      ~device:Device.zu3eg f
  in
  let sched = List.hd (Walk.collect f ~pred:Hida_d.is_schedule) in
  let sim = Sim_ir.simulate_schedule ~frames:64 Device.zu3eg sched in
  let analytic = float_of_int rep.Driver.estimate.Qor.d_interval in
  let simulated = sim.Sim.r_steady_interval in
  checkb
    (Printf.sprintf "sim %.0f vs analytic %.0f" simulated analytic)
    (simulated <= analytic *. 1.2 && simulated >= analytic *. 0.5)

let test_sim_vs_analytic_all_kernels () =
  (* For every multi-loop PolyBench kernel, the simulated steady interval
     of the compiled design must agree with the analytic estimate. *)
  List.iter
    (fun (e : Polybench.entry) ->
      if e.Polybench.e_multi_loop then begin
        let _m, f = e.Polybench.e_build ~scale:0.1 () in
        let rep =
          Driver.run_memref
            ~opts:{ Driver.default with max_parallel_factor = 4 }
            ~device:Device.zu3eg f
        in
        match Walk.collect f ~pred:Hida_d.is_schedule with
        | sched :: _ ->
            let sim = Sim_ir.simulate_schedule ~frames:64 Device.zu3eg sched in
            let analytic = float_of_int rep.Driver.estimate.Qor.d_interval in
            checkb
              (Printf.sprintf "%s: sim %.0f within 2x of analytic %.0f"
                 e.Polybench.e_name sim.Sim.r_steady_interval analytic)
              (sim.Sim.r_steady_interval <= analytic *. 1.25
              && sim.Sim.r_steady_interval >= analytic *. 0.4)
        | [] -> ()
      end)
    Polybench.all

let prop_interval_bounded_by_sum_and_max =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sim interval between max and sum of latencies"
       ~count:50
       QCheck2.Gen.(list_size (int_range 2 5) (int_range 10 200))
       (fun lats ->
         let nodes =
           List.mapi
             (fun i lat ->
               node i ~lat
                 ~reads:(if i = 0 then [] else [ i - 1 ])
                 ~writes:(if i = List.length lats - 1 then [] else [ i ]))
             lats
         in
         let buffers =
           List.init (List.length lats - 1) (fun i -> buffer i ~depth:2)
         in
         let r = Sim.run ~frames:32 nodes buffers in
         let maxl = float_of_int (List.fold_left max 1 lats) in
         let suml = float_of_int (List.fold_left ( + ) 0 lats) in
         r.Sim.r_steady_interval >= maxl *. 0.99
         && r.Sim.r_steady_interval <= suml +. 1.))

let test_gantt_narrow_width () =
  (* Regression: width < 8 made the axis row raise Invalid_argument
     from [String.make (width - 8)].  The width is clamped now, and a
     zero-latency node renders as a single-column mark instead of
     crashing or vanishing. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:0 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:4 nodes [ buffer 0 ~depth:2 ] in
  List.iter
    (fun width ->
      let g = Sim.gantt ~width r in
      checkb
        (Printf.sprintf "gantt width %d renders" width)
        (String.length g > 0 && contains ~sub:"cycles" g))
    [ 1; 4; 7; 8; 12 ];
  let g = Sim.gantt ~width:1 r in
  checkb "zero-latency node has a row" (contains ~sub:"n1" g && contains ~sub:"n0" g)

(* The compiled-step core and the dense reference must agree on every
   observable: totals, steady interval (exact float), first-frame
   latency, busy fractions, inter-frame histogram, and full traces. *)
let same_results ?(traces = true) (d : Sim.result) (c : Sim.result) =
  d.Sim.r_total_cycles = c.Sim.r_total_cycles
  && d.Sim.r_steady_interval = c.Sim.r_steady_interval
  && d.Sim.r_first_frame_latency = c.Sim.r_first_frame_latency
  && d.Sim.r_node_busy = c.Sim.r_node_busy
  && d.Sim.r_frames = c.Sim.r_frames
  && Hida_obs.Histogram.count d.Sim.r_interframe
     = Hida_obs.Histogram.count c.Sim.r_interframe
  && Hida_obs.Histogram.sum d.Sim.r_interframe
     = Hida_obs.Histogram.sum c.Sim.r_interframe
  && Hida_obs.Histogram.buckets d.Sim.r_interframe
     = Hida_obs.Histogram.buckets c.Sim.r_interframe
  && ((not traces) || d.Sim.r_trace = c.Sim.r_trace)

(* Random layered DAGs with occasional multi-producer buffers: the
   compiled-step core must match the dense recurrence exactly. *)
let prop_compiled_matches_dense =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compiled-step core = dense core on random DAGs"
       ~count:60
       QCheck2.Gen.(
         tup4
           (list_size (int_range 2 5) (int_range 1 4)) (* nodes per layer *)
           (int_range 5 150) (* base latency *)
           (int_range 1 4) (* max buffer depth *)
           (int_range 0 1000) (* seed *))
       (fun (layers, base, maxd, seed) ->
         let rng = ref seed in
         let next () =
           rng := ((!rng * 1103515245) + 12345) land 0xFFFFFF;
           !rng
         in
         let nodes = ref [] and buffers = ref [] in
         let node_id = ref 0 and buf_id = ref 0 in
         let prev_bufs = ref [] in
         List.iter
           (fun width ->
             let this_bufs = ref [] in
             for _ = 1 to width do
               let reads =
                 match !prev_bufs with
                 | [] -> []
                 | bs -> [ List.nth bs (next () mod List.length bs) ]
               in
               let b = !buf_id in
               incr buf_id;
               this_bufs := b :: !this_bufs;
               buffers :=
                 { Sim.bs_id = b; bs_name = ""; bs_depth = 1 + (next () mod maxd) }
                 :: !buffers;
               (* Every fourth node also writes a sibling's buffer in the
                  same layer: a multi-producer buffer whose readers sit
                  one layer downstream (no same-frame cycle). *)
               let writes =
                 match !this_bufs with
                 | _ :: (_ :: _ as rest) when next () mod 4 = 0 ->
                     [ b; List.nth rest (next () mod List.length rest) ]
                 | _ -> [ b ]
               in
               nodes :=
                 {
                   Sim.ns_id = !node_id;
                   ns_name = "";
                   ns_latency = next () mod (base + 1);
                   ns_reads = reads;
                   ns_writes = writes;
                 }
                 :: !nodes;
               incr node_id
             done;
             prev_bufs := !this_bufs)
           layers;
         let nodes = List.rev !nodes and buffers = List.rev !buffers in
         let d = Sim.run_dense ~frames:24 nodes buffers in
         let c = Sim.run ~frames:24 ~trace:true nodes buffers in
         same_results d c))

let test_compiled_matches_dense_zoo () =
  (* The full workload zoo: every compiled schedule's simulator graph
     must give identical results under both cores (the bench asserts
     the same over the full-size models; here the kernels compile at
     reduced scale to keep the suite fast). *)
  let graphs = ref [] in
  List.iter
    (fun (e : Polybench.entry) ->
      if e.Polybench.e_multi_loop then begin
        let _m, f = e.Polybench.e_build ~scale:0.1 () in
        ignore
          (Driver.run_memref
             ~opts:{ Driver.default with max_parallel_factor = 4 }
             ~device:Device.zu3eg f);
        match Walk.collect f ~pred:Hida_d.is_schedule with
        | sched :: _ ->
            graphs :=
              (e.Polybench.e_name, Sim_ir.of_schedule Device.zu3eg sched)
              :: !graphs
        | [] -> ()
      end)
    Polybench.all;
  List.iter
    (fun name ->
      let _m, f = (Models.by_name name).Models.e_build () in
      ignore
        (Driver.run_nn
           ~opts:{ Driver.default with max_parallel_factor = 4 }
           ~device:Device.vu9p_slr f);
      match Walk.collect f ~pred:Hida_d.is_schedule with
      | sched :: _ ->
          graphs := (name, Sim_ir.of_schedule Device.vu9p_slr sched) :: !graphs
      | [] -> ())
    [ "lenet"; "mlp" ];
  checkb "zoo produced schedules" (List.length !graphs >= 5);
  List.iter
    (fun (name, (nodes, buffers)) ->
      let d = Sim.run_dense ~frames:96 nodes buffers in
      let c = Sim.run ~frames:96 ~trace:true nodes buffers in
      checkb (Printf.sprintf "%s: compiled = dense" name) (same_results d c))
    !graphs

let test_untraced_10k_frames () =
  (* Memory shape: a 10k-frame run keeps no per-frame state beyond the
     ring (no trace) and still reports the streaming statistics. *)
  let n = 50 in
  let nodes =
    List.init n (fun i ->
        node i ~lat:(10 + (i mod 7))
          ~reads:(if i = 0 then [] else [ i - 1 ])
          ~writes:(if i = n - 1 then [] else [ i ]))
  in
  let buffers = List.init (n - 1) (fun i -> buffer i ~depth:2) in
  let r = Sim.run ~frames:10_000 nodes buffers in
  checkb "10k frames untraced by default" (r.Sim.r_trace = []);
  checki "10k frames recorded" 10_000 r.Sim.r_frames;
  checki "one inter-frame gap per frame pair" 9_999
    (Hida_obs.Histogram.count r.Sim.r_interframe);
  checkb "total covers all frames"
    (r.Sim.r_total_cycles >= 10_000 * 16);
  checkb "steady interval = bottleneck latency"
    (Float.abs (r.Sim.r_steady_interval -. 16.) < 1.)

let test_trace_opt_in () =
  let nodes =
    [
      node 0 ~lat:10 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let bufs = [ buffer 0 ~depth:2 ] in
  let small = Sim.run ~frames:8 nodes bufs in
  checkb "small runs trace by default" (small.Sim.r_trace <> []);
  let big = Sim.run ~frames:1000 nodes bufs in
  checkb "large runs untraced by default" (big.Sim.r_trace = []);
  let forced = Sim.run ~frames:1000 ~trace:true nodes bufs in
  checkb "explicit trace at any frame count"
    (List.length forced.Sim.r_trace = 2);
  let off = Sim.run ~frames:8 ~trace:false nodes bufs in
  checkb "explicit trace:false" (off.Sim.r_trace = []);
  (* Untraced and traced runs agree on everything else. *)
  checkb "trace flag is observation-only"
    (same_results ~traces:false big
       { forced with Sim.r_trace = [] })

let test_arrival_floor () =
  (* A stream arriving slower than the accelerator drains paces the
     pipeline: the steady interval tracks the arrival interval and the
     sojourn (completion - arrival) stays bounded at the pipe
     latency. *)
  let nodes =
    [
      node 0 ~lat:10 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:10 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let c = Sim.compile nodes [ buffer 0 ~depth:2 ] in
  let completions = Array.make 64 0 in
  let r =
    Sim.run_compiled ~frames:64 ~arrival:(fun k -> k * 100) ~completions c
  in
  checkb "arrival-bound interval"
    (Float.abs (r.Sim.r_steady_interval -. 100.) < 1.);
  Array.iteri
    (fun k comp ->
      checkb "sojourn = pipe latency under light load" (comp - (k * 100) = 20))
    completions

let test_replica_farm () =
  (* Sim_farm: a stream arriving 4x faster than one replica drains is
     throughput-bound at 1 replica and drained by 4; sojourn tails
     collapse accordingly.  The report must not depend on jobs. *)
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:400 ~reads:[ 0 ] ~writes:[ 1 ];
      node 2 ~lat:100 ~reads:[ 1 ] ~writes:[];
    ]
  in
  let c = Sim.compile nodes [ buffer 0 ~depth:2; buffer 1 ~depth:2 ] in
  let farm replicas jobs =
    Sim_farm.simulate ~jobs ~replicas ~frames:256 ~arrival_interval:100 c
  in
  let one = farm 1 1 and four = farm 4 1 in
  checki "all frames measured" 256 (Hida_obs.Histogram.count one.Sim_farm.fr_latency);
  checkb "4 replicas out-stream 1"
    (four.Sim_farm.fr_frames_per_kcycle
    > one.Sim_farm.fr_frames_per_kcycle *. 2.);
  checkb "tail latency collapses with replicas"
    (Hida_obs.Histogram.percentile four.Sim_farm.fr_latency 99.
    < Hida_obs.Histogram.percentile one.Sim_farm.fr_latency 99.);
  (* Arrival-bound at 4 replicas: each replica sees one frame per 400
     cycles, exactly its service interval, so sojourn stays near the
     600-cycle pipe latency. *)
  checkb "drained farm sojourn bounded"
    (Hida_obs.Histogram.percentile four.Sim_farm.fr_latency 99. < 2_000);
  let four_j4 = farm 4 4 in
  checkb "report independent of jobs"
    (four.Sim_farm.fr_total_cycles = four_j4.Sim_farm.fr_total_cycles
    && four.Sim_farm.fr_frames_per_kcycle
       = four_j4.Sim_farm.fr_frames_per_kcycle
    && Hida_obs.Histogram.buckets four.Sim_farm.fr_latency
       = Hida_obs.Histogram.buckets four_j4.Sim_farm.fr_latency
    && Hida_obs.Histogram.sum four.Sim_farm.fr_latency
       = Hida_obs.Histogram.sum four_j4.Sim_farm.fr_latency)

let test_trace_and_gantt () =
  let nodes =
    [
      node 0 ~lat:100 ~reads:[] ~writes:[ 0 ];
      node 1 ~lat:200 ~reads:[ 0 ] ~writes:[];
    ]
  in
  let r = Sim.run ~frames:8 nodes [ buffer 0 ~depth:2 ] in
  (* Traces are monotone and respect latencies. *)
  List.iter
    (fun ((n : Sim.node_spec), t) ->
      Array.iteri
        (fun k (s, f) ->
          checkb "finish = start + latency" (f = s + n.Sim.ns_latency);
          if k > 0 then checkb "frames ordered" (s >= fst t.(k - 1)))
        t)
    r.Sim.r_trace;
  let g = Sim.gantt ~frames:3 r in
  checkb "gantt has one row per node"
    (List.length (String.split_on_char '\n' g) >= 3);
  checkb "gantt shows frames" (Helpers.contains ~sub:"0" g && Helpers.contains ~sub:"1" g)

(* Random layered DAGs: interval bounded by [max, sum] of latencies and
   weakly decreasing in buffer depth. *)
let prop_random_dag =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random DAGs: interval bounds and depth monotonicity"
       ~count:40
       QCheck2.Gen.(
         tup3
           (list_size (int_range 2 4) (int_range 1 3)) (* nodes per layer *)
           (int_range 10 200) (* base latency *)
           (int_range 0 1000) (* seed *))
       (fun (layers, base, seed) ->
         let rng = ref seed in
         let next () =
           rng := ((!rng * 1103515245) + 12345) land 0xFFFFFF;
           !rng
         in
         (* Build a layered DAG: every node reads one buffer from the
            previous layer and writes one buffer. *)
         let nodes = ref [] and buffers = ref [] in
         let node_id = ref 0 and buf_id = ref 0 in
         let prev_bufs = ref [] in
         List.iter
           (fun width ->
             let this_bufs = ref [] in
             for _ = 1 to width do
               let reads =
                 match !prev_bufs with
                 | [] -> []
                 | bs -> [ List.nth bs (next () mod List.length bs) ]
               in
               let b = !buf_id in
               incr buf_id;
               this_bufs := b :: !this_bufs;
               buffers := { Sim.bs_id = b; bs_name = ""; bs_depth = 2 } :: !buffers;
               nodes :=
                 {
                   Sim.ns_id = !node_id;
                   ns_name = "";
                   ns_latency = base + (next () mod base);
                   ns_reads = reads;
                   ns_writes = [ b ];
                 }
                 :: !nodes;
               incr node_id
             done;
             prev_bufs := !this_bufs)
           layers;
         let nodes = List.rev !nodes and buffers = List.rev !buffers in
         let r2 = Sim.run ~frames:24 nodes buffers in
         let deep =
           List.map (fun b -> { b with Sim.bs_depth = 4 }) buffers
         in
         let r4 = Sim.run ~frames:24 nodes deep in
         let maxl =
           float_of_int
             (List.fold_left (fun acc n -> max acc n.Sim.ns_latency) 1 nodes)
         in
         let suml =
           float_of_int
             (List.fold_left (fun acc n -> acc + n.Sim.ns_latency) 0 nodes)
         in
         r2.Sim.r_steady_interval >= maxl *. 0.99
         && r2.Sim.r_steady_interval <= suml +. 1.
         && r4.Sim.r_steady_interval <= r2.Sim.r_steady_interval +. 1.))

let tests =
  [
    Alcotest.test_case "trace and gantt" `Quick test_trace_and_gantt;
    prop_random_dag;
    Alcotest.test_case "chain pipeline" `Quick test_chain_pipeline;
    Alcotest.test_case "depth-1 serialization" `Quick test_depth1_serializes;
    Alcotest.test_case "fork-join stall (Fig 8)" `Quick test_fork_join_stall;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "two-producer waits for slowest" `Quick
      test_two_producer_waits_for_slowest;
    Alcotest.test_case "cycle through non-last producer" `Quick
      test_cycle_through_earlier_producer;
    Alcotest.test_case "deadlock cycle path" `Quick test_deadlock_cycle_path;
    Alcotest.test_case "steady interval at small frame counts" `Quick
      test_steady_interval_small_frames;
    Alcotest.test_case "undeclared buffer rejected" `Quick
      test_undeclared_buffer_rejected;
    Alcotest.test_case "busy fractions" `Quick test_busy_fractions;
    Alcotest.test_case "sim cross-checks estimator" `Quick test_sim_cross_checks_estimator;
    Alcotest.test_case "sim vs analytic on all kernels" `Quick test_sim_vs_analytic_all_kernels;
    prop_interval_bounded_by_sum_and_max;
    Alcotest.test_case "gantt narrow width" `Quick test_gantt_narrow_width;
    prop_compiled_matches_dense;
    Alcotest.test_case "compiled = dense on the workload zoo" `Quick
      test_compiled_matches_dense_zoo;
    Alcotest.test_case "10k frames untraced" `Quick test_untraced_10k_frames;
    Alcotest.test_case "trace opt-in defaults" `Quick test_trace_opt_in;
    Alcotest.test_case "arrival floor" `Quick test_arrival_floor;
    Alcotest.test_case "replica farm scaling" `Quick test_replica_farm;
  ]
